#include "core/qnn_graph.h"

#include <cmath>

#include "common/rng.h"
#include "common/status.h"
#include "core/graph_plan.h"
#include "refconv/conv_ref.h"

namespace lbc::core {
namespace {

float tensor_absmax(const Tensor<float>& t) {
  float m = 0;
  for (float v : t.span()) m = std::max(m, std::fabs(v));
  return m;
}

Tensor<float> relu_f(const Tensor<float>& x) {
  Tensor<float> out(x.shape());
  for (i64 i = 0; i < x.elems(); ++i)
    out.data()[i] = x.data()[i] > 0 ? x.data()[i] : 0.0f;
  return out;
}

}  // namespace

QnnGraph::NodeId QnnGraph::push(Node n) {
  nodes_.push_back(std::move(n));
  calibrated_ = false;
  plans_.clear();
  return static_cast<NodeId>(nodes_.size() - 1);
}

QnnGraph::NodeId QnnGraph::add_input(i64 channels, i64 hw) {
  Node n;
  n.kind = Kind::kInput;
  n.out_shape = Shape4{1, channels, hw, hw};
  return push(std::move(n));
}

QnnGraph::NodeId QnnGraph::add_conv(NodeId src, i64 out_c, i64 kernel,
                                    i64 stride, i64 pad, int bits,
                                    const Tensor<float>& weight,
                                    std::span<const float> bias, bool relu) {
  const Shape4 in = at(src).out_shape;
  Node n;
  n.kind = Kind::kConv;
  n.src0 = src;
  n.bits = bits;
  n.relu = relu;
  n.conv.name = "conv" + std::to_string(nodes_.size());
  n.conv.batch = 1;
  n.conv.in_c = in.c;
  n.conv.in_h = in.h;
  n.conv.in_w = in.w;
  n.conv.out_c = out_c;
  n.conv.kernel = kernel;
  n.conv.stride = stride;
  n.conv.pad = pad;
  LBC_CHECK_MSG(n.conv.valid(), "add_conv: invalid conv shape");
  LBC_CHECK_MSG(weight.shape() == (Shape4{out_c, in.c, kernel, kernel}),
                "add_conv: weight tensor does not match out_c/in_c/kernel");
  n.weight_f = weight;
  if (!bias.empty()) {
    LBC_CHECK_MSG(static_cast<i64>(bias.size()) == out_c,
                  "add_conv: bias size does not match out_c");
    n.bias_f.assign(bias.begin(), bias.end());
  }
  n.out_shape = Shape4{1, out_c, n.conv.out_h(), n.conv.out_w()};
  return push(std::move(n));
}

QnnGraph::NodeId QnnGraph::add_add(NodeId a, NodeId b, bool relu) {
  LBC_CHECK_MSG(at(a).out_shape == at(b).out_shape,
                "add_add: operand shapes differ");
  Node n;
  n.kind = Kind::kAdd;
  n.src0 = a;
  n.src1 = b;
  n.relu = relu;
  n.bits = std::max(at(a).bits, at(b).bits);
  n.out_shape = at(a).out_shape;
  return push(std::move(n));
}

QnnGraph::NodeId QnnGraph::add_maxpool2(NodeId src) {
  const Shape4 in = at(src).out_shape;
  LBC_CHECK_MSG(in.h % 2 == 0 && in.w % 2 == 0,
                "add_maxpool2: input height/width must be even");
  Node n;
  n.kind = Kind::kMaxPool2;
  n.src0 = src;
  n.bits = at(src).bits;
  n.out_shape = Shape4{1, in.c, in.h / 2, in.w / 2};
  return push(std::move(n));
}

QnnGraph::NodeId QnnGraph::add_global_avgpool(NodeId src) {
  const Shape4 in = at(src).out_shape;
  Node n;
  n.kind = Kind::kGlobalAvgPool;
  n.src0 = src;
  n.bits = at(src).bits;
  n.out_shape = Shape4{1, in.c, 1, 1};
  return push(std::move(n));
}

Shape4 QnnGraph::output_shape() const {
  LBC_CHECK_MSG(!nodes_.empty(), "output_shape: graph has no nodes");
  return nodes_.back().out_shape;
}

// ---------------------------------------------------------------------------
// fp32 reference forward (also the calibration pass)
// ---------------------------------------------------------------------------

Tensor<float> QnnGraph::forward_fp32(const Tensor<float>& x) const {
  std::vector<Tensor<float>> acts(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    switch (n.kind) {
      case Kind::kInput:
        LBC_CHECK_MSG(x.shape() == n.out_shape,
                      "forward_fp32: input shape does not match input node");
        acts[i] = x;
        break;
      case Kind::kConv: {
        Tensor<float> y =
            ref::conv2d_f32(n.conv, acts[static_cast<size_t>(n.src0)], n.weight_f);
        if (!n.bias_f.empty())
          for (i64 c = 0; c < y.shape().c; ++c)
            for (i64 h = 0; h < y.shape().h; ++h)
              for (i64 w = 0; w < y.shape().w; ++w)
                y.at(0, c, h, w) += n.bias_f[static_cast<size_t>(c)];
        acts[i] = n.relu ? relu_f(y) : y;
        break;
      }
      case Kind::kAdd: {
        const Tensor<float>& a = acts[static_cast<size_t>(n.src0)];
        const Tensor<float>& b = acts[static_cast<size_t>(n.src1)];
        Tensor<float> y(a.shape());
        for (i64 j = 0; j < a.elems(); ++j)
          y.data()[j] = a.data()[j] + b.data()[j];
        acts[i] = n.relu ? relu_f(y) : y;
        break;
      }
      case Kind::kMaxPool2: {
        const Tensor<float>& a = acts[static_cast<size_t>(n.src0)];
        Tensor<float> y(n.out_shape);
        for (i64 c = 0; c < y.shape().c; ++c)
          for (i64 h = 0; h < y.shape().h; ++h)
            for (i64 w = 0; w < y.shape().w; ++w)
              y.at(0, c, h, w) = std::max(
                  std::max(a.at(0, c, 2 * h, 2 * w), a.at(0, c, 2 * h, 2 * w + 1)),
                  std::max(a.at(0, c, 2 * h + 1, 2 * w),
                           a.at(0, c, 2 * h + 1, 2 * w + 1)));
        acts[i] = y;
        break;
      }
      case Kind::kGlobalAvgPool: {
        const Tensor<float>& a = acts[static_cast<size_t>(n.src0)];
        Tensor<float> y(n.out_shape);
        const float inv = 1.0f / static_cast<float>(a.shape().h * a.shape().w);
        for (i64 c = 0; c < a.shape().c; ++c) {
          float sum = 0;
          for (i64 h = 0; h < a.shape().h; ++h)
            for (i64 w = 0; w < a.shape().w; ++w) sum += a.at(0, c, h, w);
          y.at(0, c, 0, 0) = sum * inv;
        }
        acts[i] = y;
        break;
      }
    }
  }
  return acts.back();
}

Status QnnGraph::calibrate(const Tensor<float>& x) {
  LBC_VALIDATE(!nodes_.empty(), kInvalidArgument,
               "calibrate: graph has no nodes");
  LBC_VALIDATE(nodes_.front().kind == Kind::kInput, kInvalidArgument,
               "calibrate: graph must start with an input node");
  LBC_VALIDATE(x.shape() == nodes_.front().out_shape, kInvalidArgument,
               "calibrate: input tensor does not match the input node");
  for (float v : x.span())
    LBC_VALIDATE(std::isfinite(v), kInvalidArgument,
                 "calibrate: non-finite calibration value");
  plans_.clear();

  // A node feeding a lower-bit consumer must already emit activations in
  // that consumer's range (the paper's QNNs quantize both operands of a
  // b-bit conv to b bits), so propagate consumer bit widths backwards.
  for (auto& n : nodes_) n.act_bits = n.bits;
  for (size_t i = nodes_.size(); i-- > 0;) {
    const Node& n = nodes_[i];
    for (NodeId src : {n.src0, n.src1})
      if (src >= 0)
        nodes_[static_cast<size_t>(src)].act_bits = std::min(
            nodes_[static_cast<size_t>(src)].act_bits, n.act_bits);
  }

  // fp32 pass, recording absmax per node output.
  std::vector<Tensor<float>> acts(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    // Reuse forward_fp32 logic node by node (duplicated intentionally to
    // record intermediates without storing the whole graph twice).
    switch (n.kind) {
      case Kind::kInput: acts[i] = x; break;
      case Kind::kConv: {
        Tensor<float> y =
            ref::conv2d_f32(n.conv, acts[static_cast<size_t>(n.src0)], n.weight_f);
        if (!n.bias_f.empty())
          for (i64 c = 0; c < y.shape().c; ++c)
            for (i64 h = 0; h < y.shape().h; ++h)
              for (i64 w = 0; w < y.shape().w; ++w)
                y.at(0, c, h, w) += n.bias_f[static_cast<size_t>(c)];
        acts[i] = n.relu ? relu_f(y) : y;
        LBC_ASSIGN_OR_RETURN(
            n.weight_scheme,
            quant::choose_scheme(tensor_absmax(n.weight_f), n.bits));
        n.weight_q = quant::quantize(n.weight_f, n.weight_scheme);
        break;
      }
      case Kind::kAdd: {
        const Tensor<float>& a = acts[static_cast<size_t>(n.src0)];
        const Tensor<float>& b = acts[static_cast<size_t>(n.src1)];
        Tensor<float> y(a.shape());
        for (i64 j = 0; j < a.elems(); ++j)
          y.data()[j] = a.data()[j] + b.data()[j];
        acts[i] = n.relu ? relu_f(y) : y;
        break;
      }
      case Kind::kMaxPool2:
      case Kind::kGlobalAvgPool: {
        // Delegate to the fp32 kernels above via a tiny local graph would
        // be overkill; recompute inline.
        const Tensor<float>& a = acts[static_cast<size_t>(n.src0)];
        if (n.kind == Kind::kMaxPool2) {
          Tensor<float> y(n.out_shape);
          for (i64 c = 0; c < y.shape().c; ++c)
            for (i64 h = 0; h < y.shape().h; ++h)
              for (i64 w = 0; w < y.shape().w; ++w)
                y.at(0, c, h, w) = std::max(
                    std::max(a.at(0, c, 2 * h, 2 * w),
                             a.at(0, c, 2 * h, 2 * w + 1)),
                    std::max(a.at(0, c, 2 * h + 1, 2 * w),
                             a.at(0, c, 2 * h + 1, 2 * w + 1)));
          acts[i] = y;
        } else {
          Tensor<float> y(n.out_shape);
          const float inv =
              1.0f / static_cast<float>(a.shape().h * a.shape().w);
          for (i64 c = 0; c < a.shape().c; ++c) {
            float sum = 0;
            for (i64 h = 0; h < a.shape().h; ++h)
              for (i64 w = 0; w < a.shape().w; ++w) sum += a.at(0, c, h, w);
            y.at(0, c, 0, 0) = sum * inv;
          }
          acts[i] = y;
        }
        break;
      }
    }
    LBC_ASSIGN_OR_RETURN(
        n.scheme, quant::choose_scheme(tensor_absmax(acts[i]), n.act_bits));
    n.calibrated = true;
  }
  calibrated_ = true;
  return Status();
}

// ---------------------------------------------------------------------------
// integer forward
// ---------------------------------------------------------------------------

QnnGraph::RunResult QnnGraph::forward(const Tensor<float>& x,
                                      armkern::ConvAlgo algo) const {
  LBC_CHECK_MSG(calibrated_, "forward: call calibrate() first");
  // Compile-once, execute-many: the whole net is compiled into a GraphPlan
  // (fused epilogues + joint blocking + liveness-packed arena) the first
  // time each algo is requested. Graph construction already validated the
  // convs; a compile failure here is a programming error, so .value()
  // (fatal, defined) is correct.
  std::shared_ptr<const GraphPlan>& plan = plans_[static_cast<int>(algo)];
  if (plan == nullptr) {
    GraphPlanOptions opt;
    opt.algo = algo;
    plan = std::make_shared<const GraphPlan>(
        GraphPlan::compile(*this, opt).value());
  }
  return plan->forward(x, arena_, scratch_).value();
}

// ---------------------------------------------------------------------------
// Block builder
// ---------------------------------------------------------------------------

QnnGraph::NodeId add_bottleneck_block(QnnGraph& g, QnnGraph::NodeId src,
                                      i64 in_c, i64 mid_c, i64 out_c,
                                      i64 stride, int bits, u64 seed) {
  auto rand_w = [&](i64 oc, i64 ic, i64 k, u64 s) {
    return random_ftensor(Shape4{oc, ic, k, k}, -0.25f, 0.25f, s);
  };
  const auto c1 = g.add_conv(src, mid_c, 1, stride, 0, bits,
                             rand_w(mid_c, in_c, 1, seed), {}, /*relu=*/true);
  const auto c2 = g.add_conv(c1, mid_c, 3, 1, 1, bits,
                             rand_w(mid_c, mid_c, 3, seed + 1), {}, true);
  const auto c3 = g.add_conv(c2, out_c, 1, 1, 0, bits,
                             rand_w(out_c, mid_c, 1, seed + 2), {}, false);
  QnnGraph::NodeId shortcut = src;
  if (in_c != out_c || stride != 1)
    shortcut = g.add_conv(src, out_c, 1, stride, 0, bits,
                          rand_w(out_c, in_c, 1, seed + 3), {}, false);
  return g.add_add(c3, shortcut, /*relu=*/true);
}

}  // namespace lbc::core
