// Registers the engine's modeled execution paths — the emulated ARM
// Cortex-A53 and the simulated TU102 GPU — into the hal::BackendRegistry,
// next to the native x86 backends hal registers itself. The adapters live
// in core (not hal) because core is the layer that links armkern/gpukern;
// hal depends only on common.
#pragma once

#include <memory>

#include "core/engine.h"
#include "hal/backend.h"

namespace lbc::core {

/// Register all of this process's backends into hal::BackendRegistry:
/// "arm-a53-emulated", "gpu-tu102-simulated" (modeled-cycle adapters
/// defined here) and the native x86 entries (hal's own). Idempotent;
/// called lazily by plan_native_conv and safe to call from anywhere.
void ensure_hal_backends_registered();

/// The registry identity a core::Backend executes under right now —
/// for kNativeHost this is the registry's pick ("x86-avx2" or
/// "x86-scalar"), nullptr when LBC_HAL_DISABLE=native opted out; the
/// modeled backends always resolve.
std::shared_ptr<hal::Backend> registry_backend_for(Backend b);

}  // namespace lbc::core
