#include "core/hal_backends.h"

namespace lbc::core {

namespace {

/// Modeled-cycle adapter: always available (the emulators are portable
/// C++), never the wall-clock source.
class ModeledBackend final : public hal::Backend {
 public:
  explicit ModeledBackend(hal::BackendInfo info) : info_(std::move(info)) {}
  const hal::BackendInfo& info() const override { return info_; }
  bool available() const override { return true; }

 private:
  hal::BackendInfo info_;
};

}  // namespace

void ensure_hal_backends_registered() {
  hal::ensure_native_backends_registered();
  static const bool once = [] {
    auto& reg = hal::BackendRegistry::instance();
    hal::BackendInfo arm;
    arm.name = "arm-a53-emulated";
    arm.kind = hal::BackendKind::kEmulatedArm;
    arm.measured = false;
    arm.priority = 10;
    arm.description =
        "emulated NEON low-bit kernels priced by the Cortex-A53 cycle model";
    (void)reg.register_backend(
        std::make_shared<ModeledBackend>(std::move(arm)));

    hal::BackendInfo gpu;
    gpu.name = "gpu-tu102-simulated";
    gpu.kind = hal::BackendKind::kSimulatedGpu;
    gpu.measured = false;
    gpu.priority = 10;
    gpu.description =
        "simulated TU102 kernels priced by the roofline cost model";
    (void)reg.register_backend(
        std::make_shared<ModeledBackend>(std::move(gpu)));
    return true;
  }();
  (void)once;
}

std::shared_ptr<hal::Backend> registry_backend_for(Backend b) {
  ensure_hal_backends_registered();
  switch (b) {
    case Backend::kNativeHost:
      return hal::select_native_backend();
    case Backend::kArmCortexA53:
      return hal::BackendRegistry::instance().select(
          hal::BackendKind::kEmulatedArm);
    case Backend::kGpuTU102:
      return hal::BackendRegistry::instance().select(
          hal::BackendKind::kSimulatedGpu);
  }
  return nullptr;
}

}  // namespace lbc::core
