// Whole-model conv-stack runner: executes every layer of a network table
// on synthetic quantized tensors, functionally verifying each against the
// int32 reference and accumulating modeled time. Used by examples and the
// end-to-end tests.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/engine.h"

namespace lbc::core {

struct LayerRun {
  std::string name;
  double seconds = 0;
  bool verified = false;  ///< bit-exact vs reference conv (if checked)
};

struct ModelRunReport {
  std::vector<LayerRun> layers;
  double total_seconds = 0;
  i64 total_macs = 0;
};

struct ModelRunOptions {
  int bits = 8;
  Backend backend = Backend::kArmCortexA53;
  ArmImpl arm_impl = ArmImpl::kOurs;
  GpuImpl gpu_impl = GpuImpl::kOurs;
  armkern::ConvAlgo arm_algo = armkern::ConvAlgo::kGemm;
  int threads = 1;      ///< ARM row-panel workers (Pi 3B has 4 cores)
  bool verify = false;  ///< run the reference conv per layer (slow)
  u64 seed = 1;
};

/// Run every layer with fresh synthetic data in the adjusted bit range.
ModelRunReport run_model(std::span<const ConvShape> layers,
                         const ModelRunOptions& opt);

}  // namespace lbc::core
