// Whole-model conv-stack runner: executes every layer of a network table
// on synthetic quantized tensors, functionally verifying each against the
// int32 reference and accumulating modeled time. Used by examples and the
// end-to-end tests.
//
// Degradation policy: run_model() validates its options up front and
// returns kInvalidArgument for nonsense (bits outside [2, 8], bad thread
// count, unsupported backend/bits pairing). Per-layer failures — an
// invalid shape in the table, an injected allocation failure — do NOT
// abort the run: the layer is recorded with its error string and the
// remaining layers still execute, so one bad table row costs one row.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/engine.h"

namespace lbc::core {

struct LayerRun {
  std::string name;
  double seconds = 0;
  /// Measured wall-clock nanoseconds of the conv (Backend::kNativeHost
  /// only; 0 on the modeled backends, whose `seconds` is the cost model).
  double measured_ns = 0;
  bool verified = false;  ///< bit-exact vs reference conv (if checked)
  std::string requested_impl;  ///< impl the caller asked for
  std::string executed_algo;   ///< kernel rung that actually ran (ARM)
  FallbackRecord fallback;     ///< set when the layer degraded
  std::string error;           ///< non-empty if this layer failed to run
};

struct ModelRunReport {
  std::vector<LayerRun> layers;
  double total_seconds = 0;
  /// Sum of LayerRun::measured_ns — the wall-clock story of a native-host
  /// run (0 on modeled backends).
  double total_measured_ns = 0;
  i64 total_macs = 0;
  int fallback_layers = 0;  ///< layers that ran, but on a degraded kernel
  int error_layers = 0;     ///< layers that could not run at all
};

struct ModelRunOptions {
  int bits = 8;
  Backend backend = Backend::kArmCortexA53;
  ArmImpl arm_impl = ArmImpl::kOurs;
  GpuImpl gpu_impl = GpuImpl::kOurs;
  armkern::ConvAlgo arm_algo = armkern::ConvAlgo::kGemm;
  int threads = 1;      ///< ARM row-panel workers (Pi 3B has 4 cores)
  int batch = 1;        ///< micro-batch: every layer runs with this batch
  bool verify = false;  ///< run the reference conv per layer (slow)
  /// ARM backend: pick every blocked-GEMM layer's {Mc, Kc, Nc} with the
  /// whole-net joint search (armkern::search_graph_blocking) instead of
  /// per-layer winners — the layer table is treated as a chain.
  bool joint_blocking = true;
  u64 seed = 1;
};

/// Run every layer with fresh synthetic data in the adjusted bit range.
/// kInvalidArgument on bad options; per-layer failures are recorded in the
/// report (error_layers / LayerRun::error) without aborting the run.
StatusOr<ModelRunReport> run_model(std::span<const ConvShape> layers,
                                   const ModelRunOptions& opt);

}  // namespace lbc::core
