#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lbc::core {

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double s = 0;
  for (double x : v) s += std::log(x);
  return std::exp(s / static_cast<double>(v.size()));
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  p = std::min(100.0, std::max(0.0, p));
  std::sort(samples.begin(), samples.end());
  // Nearest-rank: the smallest sample with at least p% of the mass at or
  // below it. p = 0 is the minimum, p = 100 the maximum.
  const size_t n = samples.size();
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank > 0) --rank;
  return samples[rank];
}

void print_metric_table(const std::string& title,
                        const std::vector<MetricRow>& rows) {
  std::printf("\n== %s ==\n", title.c_str());
  size_t width = 0;
  for (const MetricRow& r : rows) width = std::max(width, r.name.size());
  for (const MetricRow& r : rows)
    std::printf("%-*s  %12.3f %s\n", static_cast<int>(width), r.name.c_str(),
                r.value, r.unit.c_str());
}

void SpeedupTable::print() const {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("baseline: %s (absolute time per layer shown in %s)\n",
              baseline_name.c_str(), time_unit.c_str());
  const double unit = (time_unit == "ms") ? 1e3 : 1e6;

  std::printf("%-9s %12s", "layer", ("base_" + time_unit).c_str());
  for (const auto& s : series) std::printf(" %10s", s.name.c_str());
  std::printf("\n");
  for (size_t i = 0; i < layer_names.size(); ++i) {
    std::printf("%-9s %12.2f", layer_names[i].c_str(),
                baseline_seconds[i] * unit);
    for (const auto& s : series)
      std::printf(" %9.2fx", baseline_seconds[i] / s.seconds[i]);
    std::printf("\n");
  }

  std::printf("-- summary (speedup vs %s) --\n", baseline_name.c_str());
  for (const auto& s : series) {
    std::vector<double> all, wins;
    double mx = 0;
    size_t mx_i = 0;
    for (size_t i = 0; i < s.seconds.size(); ++i) {
      const double sp = baseline_seconds[i] / s.seconds[i];
      all.push_back(sp);
      if (sp > 1.0) wins.push_back(sp);
      if (sp > mx) {
        mx = sp;
        mx_i = i;
      }
    }
    double avg = 0, avg_w = 0;
    for (double x : all) avg += x;
    avg /= all.empty() ? 1 : static_cast<double>(all.size());
    for (double x : wins) avg_w += x;
    avg_w /= wins.empty() ? 1 : static_cast<double>(wins.size());
    std::printf(
        "%10s: avg %.2fx | avg-among-wins %.2fx | wins %zu/%zu | max %.2fx (%s)\n",
        s.name.c_str(), avg, avg_w, wins.size(), all.size(), mx,
        layer_names.empty() ? "-" : layer_names[mx_i].c_str());
  }
}

void print_environment_banner() {
  std::printf(
      "[simulated substrate] ARM: Cortex-A53 cost model over emulated NEON "
      "(Raspberry Pi 3B class, 1.2 GHz); GPU: analytic TU102 model (RTX "
      "2080Ti class, 68 SMs, 616 GB/s). See DESIGN.md for the substitution "
      "rationale; speedup *shapes* reproduce the paper, absolute times are "
      "modeled.\n");
}

}  // namespace lbc::core
