// Whole-net graph compiler: compile a calibrated QnnGraph once, execute it
// many times against a caller-owned arena.
//
// The per-layer runtime (qnn_graph.cpp's original forward) planned and
// executed each conv in isolation: every layer materialized an i32
// accumulator tensor, requantized it in a separate pass, and handed the
// next layer a fresh int8 tensor. GraphPlan replaces that loop with a
// compiled program over the whole net:
//
//  * Fused epilogues — conv+ReLU+requant, and conv+residual-add, fold into
//    the blocked ARM GEMM's C writeback through armkern::TileEpilogue (the
//    ARM twin of gpukern/fusion's in-register epilogue, Sec. 4.3/4.4): the
//    requantized int8 activation is produced while the accumulator rows
//    are cache-resident, and the intermediate i32 tensor round trip is
//    elided. A residual add fuses into its LATER conv operand (the other
//    operand's activation is already resident in the arena), and the conv
//    writes the add node's slot directly. Bit-exact vs the unfused path:
//    both run the same fixed-point requant multipliers in the same order.
//  * Joint whole-net blocking — armkern::search_graph_blocking picks every
//    fused layer's {Mc, Kc, Nc} under one chained cache-replay objective
//    (seeded from the memoized per-layer winners, persisted as TuningCache
//    v4 "graph" rows keyed by graph_blocking_hash).
//  * One arena — every activation slot gets a liveness-assigned offset in
//    a single lbc::Workspace (first-fit over [def, last-use] intervals);
//    per-node conv scratch is taken above a Workspace mark and released by
//    rewind, so activations chain between layers with no Tensor copies.
//
// Non-fuseable rungs (winograd, bitserial, direct, reference, unblocked
// GEMM) still execute through the per-layer driver; their separate requant
// pass is charged an analytic epilogue cost so fused-vs-unfused modeled
// seconds compare the real difference (the elided i32 round trip), not a
// bookkeeping artifact.
#pragma once

#include <memory>
#include <vector>

#include "armkern/tile_search.h"
#include "common/workspace.h"
#include "core/qnn_graph.h"
#include "gpukern/tuning_cache.h"

namespace lbc::core {

/// Epilogue fusion switch: kOn folds conv+ReLU+requant (and eligible
/// residual adds) into the blocked GEMM's writeback; kOff runs every node
/// through the per-layer path (same arithmetic, same results — the modeled
/// time is what changes).
enum class FusionMode { kOn, kOff };

struct GraphPlanOptions {
  FusionMode fusion = FusionMode::kOn;
  armkern::ConvAlgo algo = armkern::ConvAlgo::kAuto;
  int threads = 1;
  /// Whole-net joint {Mc, Kc, Nc} search over the fused conv chain. Off,
  /// each conv keeps its per-layer memoized winner.
  bool joint_search = true;
  /// Optional persistent store for the joint search's winners (TuningCache
  /// v4 "graph" rows keyed by graph_blocking_hash).
  gpukern::TuningCache* tuning = nullptr;
  /// Opt-in post-compile audit (check::audit_plan): re-checks slot
  /// liveness disjointness, fused-epilogue containment, packed-weight
  /// accounting, and blocking clamp bounds over the compiled plan;
  /// compile fails with kInvariantViolation naming the invariant.
  bool audit = false;
};

class GraphPlan {
 public:
  /// Compile the whole graph: resolve every conv's plan (prepacked
  /// weights), run the joint blocking search, pair fusable epilogues, and
  /// lay out the activation arena by liveness. The graph must be
  /// calibrated. The plan snapshots the graph — later push()/calibrate()
  /// calls on `g` do not affect a compiled plan.
  static StatusOr<GraphPlan> compile(const QnnGraph& g,
                                     const GraphPlanOptions& opt = {});

  /// Integer-only forward pass. `arena` holds the liveness-planned
  /// activation slots plus fused-conv scratch (reset on entry); `scratch`
  /// serves the unfused per-layer executes (which reset it per node). Both
  /// grow to steady-state capacity on the first call. Errors:
  /// kInvalidArgument when `x` does not match the input node's shape.
  StatusOr<QnnGraph::RunResult> forward(const Tensor<float>& x,
                                        Workspace& arena,
                                        Workspace& scratch) const;

  i64 node_count() const { return static_cast<i64>(nodes_.size()); }
  /// Liveness-planned bytes of the activation slot region (the arena's
  /// base allocation; scratch grows above it per node).
  i64 activation_bytes() const { return activation_bytes_; }
  /// Total arena reservation: activation slots + the peak per-node fused
  /// scratch (accumulator block + pack buffers).
  i64 arena_reserve_bytes() const { return arena_reserve_bytes_; }
  /// armkern::graph_blocking_hash over the fused conv chain (0 when the
  /// chain is empty) — the TuningCache v4 / serve registry key.
  u64 graph_hash() const { return graph_hash_; }
  int conv_nodes() const { return conv_nodes_; }
  /// Sum of the conv plans' prepacked weight bytes — what a memory budget
  /// (serve::ModelRegistry) charges for a resident graph plan.
  i64 packed_weight_bytes() const { return packed_weight_bytes_; }
  /// Convs executing through the fused TileEpilogue writeback.
  int fused_convs() const { return fused_convs_; }
  /// Residual adds folded into a producer conv's epilogue.
  int fused_adds() const { return fused_adds_; }
  /// Whole-net modeled cycles of the joint vs per-layer-greedy blocking
  /// under the chained replay objective (both 0 when joint search did not
  /// run). greedy - joint is the modeled margin graph-level planning buys.
  double joint_cycles() const { return joint_cycles_; }
  double greedy_cycles() const { return greedy_cycles_; }

 private:
  enum class NodeKind { kInput, kConv, kAdd, kMaxPool2, kGlobalAvgPool };

  struct NodePlan {
    NodeKind kind = NodeKind::kInput;
    int src0 = -1, src1 = -1;
    Shape4 out_shape;
    int bits = 8;
    int act_bits = 8;
    bool relu = false;
    quant::QScheme scheme;

    // conv only
    std::shared_ptr<const armkern::ArmConvPlan> conv;
    std::vector<i32> bias_q;
    quant::RequantParams rq{};
    bool fused = false;   ///< executes via execute_conv_fused
    int fused_add = -1;   ///< add node folded into this conv's epilogue
    i64 gemm_m = 0, gemm_n = 0;

    // add only
    quant::FixedPointMultiplier ma{}, mb{};
    quant::ClampRange clamp{};
    int fused_into = -1;  ///< conv node that writes this add's slot

    // global avgpool only
    quant::FixedPointMultiplier gap_m{};

    // liveness-assigned arena slot (conv with fused_add >= 0 writes the
    // add node's slot instead and has none of its own)
    i64 out_offset = -1;
    i64 out_bytes = 0;
  };

  GraphPlan() = default;

  std::vector<NodePlan> nodes_;
  i64 activation_bytes_ = 0;
  i64 arena_reserve_bytes_ = 0;
  u64 graph_hash_ = 0;
  i64 packed_weight_bytes_ = 0;
  int conv_nodes_ = 0;
  int fused_convs_ = 0;
  int fused_adds_ = 0;
  double joint_cycles_ = 0;
  double greedy_cycles_ = 0;
};

}  // namespace lbc::core
