// Turing TU102 (RTX 2080Ti) device description used by the GPU cost model.
//
// The ratios between the rates below are what drive the paper's GPU
// results: Turing tensor cores sustain ~4x the int8 MAC rate of dp4a on
// the CUDA cores, and int4 tensor-core MACs run at 2x the int8 rate
// (mma.m8n8k32.s4 vs mma.m8n8k16.s8, Sec. 2.3) — which is why the paper's
// 8-bit kernels beat cuDNN-dp4a by ~4x and the 4-bit kernels add another
// ~1.2-1.3x on top (Sec. 5.3).
#pragma once

#include <string>

#include "common/types.h"

namespace lbc::gpusim {

struct DeviceSpec {
  std::string name = "NVIDIA TU102 (RTX 2080Ti), simulated";
  int sms = 68;
  double clock_hz = 1.545e9;
  double gmem_bw = 616e9;  ///< bytes/s, GDDR6

  i64 smem_per_sm = 64 * 1024;  ///< bytes usable per SM
  i64 regs_per_sm = 65536;      ///< 32-bit registers per SM
  int max_blocks_per_sm = 16;
  int max_warps_per_sm = 32;

  // MACs per SM per cycle.
  double dp4a_macs = 256.0;     ///< 64 CUDA cores x 4-way dot product
  double tc_int8_macs = 1024.0; ///< 8 tensor cores, int8 mode
  double tc_int4_macs = 2048.0; ///< int4 mode, 2x int8

  // Shared-memory issue: one LDS instruction per warp per cycle.
  double lds_issue_cycles = 1.0;

  double launch_overhead_s = 4.0e-6;  ///< per-kernel launch + driver cost
  /// Elementwise kernels (dequant/quant/ReLU) are enqueued back-to-back in
  /// one stream, so consecutive launches overlap with execution and only a
  /// small per-launch gap remains.
  double elementwise_launch_s = 1.2e-6;

  static DeviceSpec rtx2080ti() { return DeviceSpec{}; }
};

}  // namespace lbc::gpusim
