#include "gpusim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "gpusim/smem.h"

namespace lbc::gpusim {
namespace {

double elem_bytes(int bits) { return bits == 4 ? 0.5 : 1.0; }

/// Rough register pressure per thread: bookkeeping + the C fragment
/// (int32 accumulators spread over the warp) + double-buffer staging.
int regs_per_thread(const KernelShape& ks) {
  const int accum = ks.mfrag() * ks.nfrag() / 32;
  return 40 + accum + (ks.double_buffer ? 24 : 0);
}

}  // namespace

bool config_valid(const DeviceSpec& dev, const KernelShape& ks,
                  std::string* why) {
  auto fail = [&](const char* msg) {
    if (why) *why = msg;
    return false;
  };
  if (ks.bits != 4 && ks.bits != 8) return fail("bits must be 4 or 8");
  if (ks.m <= 0 || ks.n <= 0 || ks.k <= 0) return fail("empty GEMM");
  if (ks.mtile <= 0 || ks.ntile <= 0 || ks.ktile <= 0 || ks.kstep <= 0)
    return fail("non-positive tile");
  if (ks.mtile % (kMmaM * ks.warp_rows) != 0)
    return fail("MTile must split across warp rows into whole mma tiles");
  if (ks.ntile % (kMmaN * ks.warp_cols) != 0)
    return fail("NTile must split across warp cols into whole mma tiles");
  if (ks.ktile % ks.kstep != 0) return fail("KTile must be a KStep multiple");
  if (ks.use_tc && ks.kstep % mma_k(ks.bits) != 0)
    return fail("KStep must be a whole number of mma K extents");
  if (ks.warps() > dev.max_warps_per_sm) return fail("too many warps");

  const double smem =
      (static_cast<double>(ks.mtile) * ks.ktile + static_cast<double>(ks.ktile) * ks.ntile) *
      elem_bytes(ks.bits) * (ks.double_buffer ? 2.0 : 1.0);
  if (smem > static_cast<double>(dev.smem_per_sm))
    return fail("shared memory tile exceeds SM capacity");
  const i64 regs = static_cast<i64>(regs_per_thread(ks)) * ks.warps() * 32;
  if (regs > dev.regs_per_sm) return fail("register file exceeded");
  return true;
}

KernelCost estimate_kernel(const DeviceSpec& dev, const KernelShape& ks) {
  KernelCost c;
  if (!config_valid(dev, ks, &c.why_invalid)) return c;
  c.valid = true;

  const double eb = elem_bytes(ks.bits);
  const i64 mblocks = ceil_div(ks.m, ks.mtile);
  const i64 nblocks = ceil_div(ks.n, ks.ntile);
  c.blocks = mblocks * nblocks;
  const i64 ktiles = ceil_div(ks.k, ks.ktile);

  // ---- occupancy.
  const double smem_block = (static_cast<double>(ks.mtile) * ks.ktile +
                             static_cast<double>(ks.ktile) * ks.ntile) *
                            eb * (ks.double_buffer ? 2.0 : 1.0);
  const int by_smem =
      static_cast<int>(static_cast<double>(dev.smem_per_sm) / smem_block);
  const int by_regs = static_cast<int>(
      dev.regs_per_sm / (static_cast<i64>(regs_per_thread(ks)) * ks.warps() * 32));
  const int by_warps = dev.max_warps_per_sm / ks.warps();
  c.blocks_per_sm = std::max(
      1, std::min({dev.max_blocks_per_sm, by_smem, by_regs, by_warps}));
  c.occupancy = std::min(
      1.0, static_cast<double>(c.blocks_per_sm * ks.warps()) / dev.max_warps_per_sm);

  // ---- per-block costs.
  const double macs_block =
      static_cast<double>(ks.mtile) * ks.ntile * static_cast<double>(ktiles) * ks.ktile;
  const double rate =
      (ks.use_tc ? (ks.bits == 4 ? dev.tc_int4_macs : dev.tc_int8_macs)
                 : dev.dp4a_macs) *
      ks.compute_eff;
  const double compute_block_s = macs_block / (rate * dev.clock_hz);

  const double tile_bytes = (static_cast<double>(ks.mtile) * ks.ktile +
                             static_cast<double>(ks.ktile) * ks.ntile) * eb;
  const double gmem_block_bytes =
      static_cast<double>(ktiles) * tile_bytes / ks.coalesce_eff +
      static_cast<double>(ks.mtile) * ks.ntile *
          static_cast<double>(ks.epilogue_bytes_per_elem);

  // Shared-memory loads: per warp per KStep, the A and B fragments, in
  // 128-byte units whose instruction count and bank-conflict cycles come
  // from the Fig. 5 access-pattern simulation; plus the gmem->smem staging
  // stores once per KTile.
  const double frag_bytes_per_kstep =
      (static_cast<double>(ks.mfrag()) + static_cast<double>(ks.nfrag())) *
      ks.kstep * eb;
  const SmemPattern pat = simulate_fragment_access(
      static_cast<int>(static_cast<double>(ks.ktile) * eb), ks.reorder_smem);
  const double ksteps = static_cast<double>(ktiles) * (ks.ktile / ks.kstep);
  // One pattern unit = 512 bytes (32 threads x 16 bytes, i.e. four mma
  // k-chunks of the 8x16 operand tile).
  const double units_block =
      ks.warps() * ksteps * frag_bytes_per_kstep / 512.0;
  const double staging_instr =
      static_cast<double>(ktiles) * tile_bytes / (16.0 * 32.0);  // STS.128
  double lds_block = units_block * static_cast<double>(pat.instructions) +
                     staging_instr;
  const double smem_cycles_block =
      units_block * static_cast<double>(pat.cycles) + staging_instr;
  const double smem_block_s =
      smem_cycles_block * dev.lds_issue_cycles / dev.clock_hz;

  // ---- waves.
  const i64 concurrent = static_cast<i64>(dev.sms) * c.blocks_per_sm;
  const i64 full_waves = c.blocks / concurrent;
  const i64 rem = c.blocks % concurrent;
  c.waves = static_cast<double>(full_waves) + (rem ? 1.0 : 0.0);

  auto wave_time = [&](int bpsm, i64 blocks_in_wave, double repeat) {
    const double comp = compute_block_s * bpsm;
    const double smem = smem_block_s * bpsm;
    const double gmem =
        static_cast<double>(blocks_in_wave) * gmem_block_bytes / dev.gmem_bw;
    c.compute_s += comp * repeat;
    c.smem_s += smem * repeat;
    c.gmem_s += gmem * repeat;
    const double one =
        ks.double_buffer ? std::max(comp + smem, gmem) : comp + smem + gmem;
    return one * repeat;
  };

  double t = 0;
  if (full_waves > 0)
    t += wave_time(c.blocks_per_sm, concurrent, static_cast<double>(full_waves));
  if (rem > 0)
    t += wave_time(static_cast<int>(ceil_div(rem, dev.sms)), rem, 1.0);

  c.gmem_bytes = static_cast<i64>(gmem_block_bytes * static_cast<double>(c.blocks));
  c.lds_instructions = static_cast<i64>(lds_block * static_cast<double>(c.blocks));
  const double launch =
      ks.launch_overhead_s >= 0 ? ks.launch_overhead_s : dev.launch_overhead_s;
  c.seconds = t + launch;
  return c;
}

double elementwise_kernel_seconds(const DeviceSpec& dev, i64 bytes_read,
                                  i64 bytes_written) {
  const double traffic = static_cast<double>(bytes_read + bytes_written);
  return traffic / dev.gmem_bw + dev.elementwise_launch_s;
}

}  // namespace lbc::gpusim
