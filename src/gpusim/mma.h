// Functional semantics of the Tensor Core mma instructions the paper's GPU
// kernels are built on (Sec. 2.3): mma.m8n8k16.s8 and mma.m8n8k32.s4, plus
// the dp4a CUDA-core instruction used by the cuDNN baseline.
//
// Fragments are plain row-major arrays here — the warp-level register
// distribution of real mma fragments is a physical detail that does not
// change the arithmetic, and the cost model accounts for its access costs
// separately.
#pragma once

#include "common/types.h"

namespace lbc::gpusim {

/// D[8x8] += A[8x16] * B[16x8]; A row-major, B row-major (k x n), int8
/// operands, int32 accumulate. One warp-level mma.m8n8k16.s8 instruction.
void mma_m8n8k16_s8(const i8* a, const i8* b, i32* d);

/// D[8x8] += A[8x32] * B[32x8]; operands are 4-bit values carried in i8
/// storage (range [-8, 7] enforced by assertion). mma.m8n8k32.s4.
void mma_m8n8k32_s4(const i8* a, const i8* b, i32* d);

/// dp4a: acc + dot(a[0..3], b[0..3]) with int8 operands, int32 accumulate.
i32 dp4a(i32 acc, const i8* a, const i8* b);

/// mma geometry by operand width: K extent of one instruction.
constexpr int mma_k(int bits) { return bits == 4 ? 32 : 16; }
constexpr int kMmaM = 8;
constexpr int kMmaN = 8;

}  // namespace lbc::gpusim
