#include "gpusim/mma.h"

#include <cassert>

namespace lbc::gpusim {
namespace {

void mma_impl(const i8* a, const i8* b, i32* d, int kk) {
  for (int i = 0; i < kMmaM; ++i)
    for (int j = 0; j < kMmaN; ++j) {
      i32 acc = d[i * kMmaN + j];
      for (int p = 0; p < kk; ++p)
        acc += static_cast<i32>(a[i * kk + p]) *
               static_cast<i32>(b[p * kMmaN + j]);
      d[i * kMmaN + j] = acc;
    }
}

}  // namespace

void mma_m8n8k16_s8(const i8* a, const i8* b, i32* d) { mma_impl(a, b, d, 16); }

void mma_m8n8k32_s4(const i8* a, const i8* b, i32* d) {
#ifndef NDEBUG
  for (int i = 0; i < kMmaM * 32; ++i) assert(a[i] >= -8 && a[i] <= 7);
  for (int i = 0; i < 32 * kMmaN; ++i) assert(b[i] >= -8 && b[i] <= 7);
#endif
  mma_impl(a, b, d, 32);
}

i32 dp4a(i32 acc, const i8* a, const i8* b) {
  for (int i = 0; i < 4; ++i)
    acc += static_cast<i32>(a[i]) * static_cast<i32>(b[i]);
  return acc;
}

}  // namespace lbc::gpusim
