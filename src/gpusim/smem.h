// Functional simulation of the shared-memory access patterns of paper
// Fig. 5 — the "reordering memory access on shared memory" optimization.
//
// For each 128-byte fragment unit (one 8x16 int8 mma operand tile spread
// over a warp), the simulator generates the actual per-thread addresses of
// both access orders and runs them against the 32-bank, 4-byte-word shared
// memory of the SM:
//
//  * strided (the "common approach", Fig. 5a): every thread issues four
//    LDS.32 to blocks 16 bytes apart; bank conflicts depend on the tile's
//    row stride (KTile) — power-of-two strides put same-column rows in the
//    same bank and serialize;
//  * reordered (Fig. 5b): the tile is re-laid so each thread issues one
//    LDS.128 over 16 consecutive bytes — a quarter of the instructions
//    ("the number of access instructions is reduced to one-quarter") and
//    conflict-free by construction.
//
// The GPU cost model consumes these measured (instructions, cycles) pairs
// instead of assuming constants.
#pragma once

#include "common/types.h"

namespace lbc::gpusim {

struct SmemPattern {
  u64 instructions = 0;  ///< warp-level LDS instructions per 128-byte unit
  u64 cycles = 0;        ///< issue cycles including bank-conflict replays
};

/// Simulate one warp loading a 128-byte fragment unit from a shared-memory
/// tile with row stride `ld_bytes` (= KTile for the A operand).
SmemPattern simulate_fragment_access(int ld_bytes, bool reordered);

}  // namespace lbc::gpusim
