#include "gpusim/smem.h"

#include <algorithm>
#include <array>

namespace lbc::gpusim {
namespace {

constexpr int kBanks = 32;

/// Issue cycles of one warp-level access phase: every bank serves one
/// 4-byte word per cycle, so the phase replays for the most-subscribed
/// bank. Threads hitting the same word broadcast (no conflict).
u64 phase_cycles(const std::array<i64, 32>& word_addr, int first, int count) {
  u64 worst = 1;
  for (int b = 0; b < kBanks; ++b) {
    // Count distinct words mapping to bank b among the active threads.
    i64 seen[32];
    int nseen = 0;
    for (int t = first; t < first + count; ++t) {
      const i64 w = word_addr[static_cast<size_t>(t)];
      if (w % kBanks != b) continue;
      bool dup = false;
      for (int s = 0; s < nseen; ++s) dup |= (seen[s] == w);
      if (!dup) seen[nseen++] = w;
    }
    worst = std::max(worst, static_cast<u64>(std::max(nseen, 1)));
  }
  return worst;
}

}  // namespace

SmemPattern simulate_fragment_access(int ld_bytes, bool reordered) {
  SmemPattern p;
  if (reordered) {
    // One LDS.128: thread t reads bytes [16t, 16t+16) of the re-laid unit.
    // Hardware splits the warp into four phases of eight threads; each
    // phase accesses 8 threads x 4 words.
    p.instructions = 1;
    for (int phase = 0; phase < 4; ++phase) {
      // Words of this phase: threads 8*phase .. 8*phase+7, words 4t..4t+3.
      // They are consecutive words, hence distinct banks: one cycle, but
      // verify by construction rather than assumption.
      std::array<i64, 32> words{};
      int idx = 0;
      for (int t = 8 * phase; t < 8 * phase + 8; ++t)
        for (int w = 0; w < 4; ++w) words[static_cast<size_t>(idx++)] = 4 * t + w;
      // Treat the 32 words as 32 lanes of one phase.
      p.cycles += phase_cycles(words, 0, 32);
    }
    return p;
  }

  // Strided (Fig. 5a): four LDS.32; instruction i has thread t reading the
  // 4-byte block at row (t/4) * ld_bytes, column 4*(t%4) + 16*i.
  p.instructions = 4;
  for (int i = 0; i < 4; ++i) {
    std::array<i64, 32> words{};
    for (int t = 0; t < 32; ++t) {
      const i64 addr = static_cast<i64>(t / 4) * ld_bytes + 4 * (t % 4) + 16 * i;
      words[static_cast<size_t>(t)] = addr / 4;
    }
    p.cycles += phase_cycles(words, 0, 32);
  }
  return p;
}

}  // namespace lbc::gpusim
