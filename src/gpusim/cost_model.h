// Analytic timing model for tiled implicit-GEMM convolution kernels on the
// simulated TU102 (see DESIGN.md Sec. 2 for the substitution argument).
//
// Inputs are the GEMM view of the convolution (M = out_c, N = batch*oh*ow,
// K = in_c*kh*kw), the data-partition parameters of paper Sec. 4.2
// (MTile/NTile/KTile/KStep, blockRow/ColWarpNum) and the memory-access
// optimization flags of Sec. 4.3. The model composes:
//
//  * occupancy: blocks per SM limited by shared memory, registers, warp
//    slots; wave quantization over 68 SMs — this is what the tiling
//    auto-search (Fig. 11) trades against data reuse;
//  * global memory: tile traffic (each A tile is re-read N/NTile times and
//    vice versa) over peak bandwidth, divided by a coalescing efficiency
//    (16-byte vectorized access vs strided access, Sec. 4.3);
//  * shared memory: LDS instruction issue, x4 when access reordering is
//    off (4x LDS.32 instead of 1x LDS.128, Fig. 5);
//  * compute: MACs through the tensor-core (int8/int4) or dp4a rate;
//  * overlap: with the register double buffer (Fig. 6) a wave costs
//    max(compute + smem, gmem) instead of the sum;
//  * a fixed launch overhead per kernel.
#pragma once

#include <string>

#include "gpusim/device.h"
#include "gpusim/mma.h"

namespace lbc::gpusim {

struct KernelShape {
  // GEMM dims.
  i64 m = 0, n = 0, k = 0;
  int bits = 8;  ///< operand width: 8 or 4

  // Data partition (Alg. 2 tiling parameters).
  int mtile = 64, ntile = 64, ktile = 64, kstep = 32;
  int warp_rows = 2, warp_cols = 2;  ///< blockRowWarpNum, blockColWarpNum

  // Engine and memory-optimization switches.
  bool use_tc = true;         ///< tensor core vs dp4a
  bool reorder_smem = true;   ///< Fig. 5 LDS.128 reordering
  bool double_buffer = true;  ///< Fig. 6 register double buffer
  double coalesce_eff = 0.9;  ///< achieved fraction of peak gmem bandwidth
  double compute_eff = 1.0;   ///< SASS-level tuning factor (TensorRT ~1.15)
  double launch_overhead_s = -1.0;  ///< <0: use device default

  i64 epilogue_bytes_per_elem = 1;  ///< output store width (int8=1, int32=4)

  int warps() const { return warp_rows * warp_cols; }
  int mfrag() const { return mtile / warp_rows; }
  int nfrag() const { return ntile / warp_cols; }
};

struct KernelCost {
  bool valid = false;
  std::string why_invalid;

  double seconds = 0;  ///< total, including launch overhead
  double compute_s = 0, gmem_s = 0, smem_s = 0;
  i64 blocks = 0;
  int blocks_per_sm = 0;
  double occupancy = 0;  ///< resident warps / max warps
  double waves = 0;
  i64 gmem_bytes = 0;        ///< total global traffic
  i64 lds_instructions = 0;  ///< total shared-memory load instructions
};

/// Static validity of a configuration (geometry + resource fit).
bool config_valid(const DeviceSpec& dev, const KernelShape& ks,
                  std::string* why = nullptr);

/// Timing estimate; cost.valid == false iff config_valid fails.
KernelCost estimate_kernel(const DeviceSpec& dev, const KernelShape& ks);

/// Elementwise kernel (dequantize / quantize / ReLU): memory-bound
/// streaming over `bytes_read + bytes_written` plus launch overhead.
double elementwise_kernel_seconds(const DeviceSpec& dev, i64 bytes_read,
                                  i64 bytes_written);

}  // namespace lbc::gpusim
