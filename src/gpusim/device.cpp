#include "gpusim/device.h"

namespace lbc::gpusim {
// Data-only header; this TU anchors the library archive.
static_assert(sizeof(DeviceSpec) > 0);
}  // namespace lbc::gpusim
