// Checked execution over the emulated NEON instruction stream.
//
// An armsim::Ctx with a Verifier attached verifies, as the kernels run,
// the paper invariants that are otherwise only argued on paper:
//
//  1. Overflow safety (Sec. 3.3): per-lane interval analysis proves that
//     SMLAL accumulation into 16-bit lanes and MLA accumulation into 8-bit
//     lanes never exceeds the lane's representable range before the
//     SADDW/SADALP flush — for the *declared operand ranges*, not just the
//     data of this run. The exact instruction index is flagged on
//     violation (MLA wraps mod 2^8 silently, so nothing else would).
//  2. Register budget: live-register tracking over the modeled 32-entry
//     NEON register file (regfile.h); exceeding it, or reading a register
//     never written in the scope, is a violation. kMovVX spill slots are
//     allowed only where the kernel's Alg. 1 plan declares them.
//  3. Memory-bounds sanitizing: every ctx.mem() access must land inside a
//     registered tensor/Workspace region — an "asan for the simulated
//     ISA" that catches packing/padding overreads the real kernels hide.
//  4. Scheme conformance: measured CAL/LD ratio per micro-kernel scope and
//     the flush-interval bound declared in its KernelSpec.
//
// Off by default: a null Ctx::verifier adds one untaken branch per
// emulated instruction and changes no counter, so modeled cycles stay
// bit-identical (enforced by bench/verify_invariants).
//
// Thread safety: all hooks lock an internal mutex; a Verifier may be
// shared by several Ctx objects. Checked GEMM execution nevertheless
// forces threads=1 so the instruction stream (and every reported
// instruction index) is deterministic.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "armsim/counters.h"
#include "armsim/regfile.h"
#include "common/status.h"

namespace lbc::armsim {

/// Per-micro-kernel invariant declaration, opened with a VerifyScope.
/// Zero-valued fields are unchecked.
struct KernelSpec {
  const char* name = "kernel";
  /// Max SMLAL.8H MACs into one 16-bit lane between zeroes (paper Sec. 3.3).
  int acc16_flush = 0;
  /// Max byte-lane accumulations (MLA.16B MACs or the TBL scheme's ADD.16B
  /// entry adds) into one 8-bit lane between zeroes.
  int acc8_flush = 0;
  /// v<->x spill slots Alg. 1 grants beyond the 32 vector registers
  /// (4 for the SMLAL scheme, 8 for the MLA scheme).
  int spill_slots = 0;
  /// Measured MAC-instructions / vector-loads band for the scope
  /// (Fig. 1: re-designed GEMM 4.0, MLA 2.0, ncnn 8.0, traditional 1.0).
  double cal_ld_min = 0.0;
  double cal_ld_max = 0.0;
};

/// One caught invariant violation. `instr` is the 1-based index of the
/// offending instruction in the verified stream (register-level emulated
/// instructions only; bulk tallies do not advance it).
struct Violation {
  u64 instr = 0;
  Op op = Op::kScalar;
  std::string kind;  ///< "overflow" | "flush-interval" | "reg-budget" |
                     ///< "uninit-read" | "spill-unaccounted" | "oob" |
                     ///< "cal-ld-ratio"
  std::string detail;
};

/// Which MAC instruction fired, lane-mapping included.
enum class MacKind {
  kSmlal8Lo,   ///< SMLAL  Vd.8H, Vn.8B,  Vm.8B   (low byte lanes)
  kSmlal8Hi,   ///< SMLAL2 Vd.8H, Vn.16B, Vm.16B  (high byte lanes)
  kSmlal16Lo,  ///< SMLAL  Vd.4S, Vn.4H,  Vm.4H
  kSmlal16Hi,  ///< SMLAL2 Vd.4S, Vn.8H,  Vm.8H
  kMla8,       ///< MLA    Vd.16B (wraps mod 2^8)
  kSdot,       ///< SDOT   Vd.4S (four products per lane)
};

/// Which widening-accumulate fired (the flush instructions).
enum class WidenKind {
  kSaddw8Lo,   ///< SADDW  Vd.8H, Vn.8H, Vm.8B
  kSaddw8Hi,   ///< SADDW2 Vd.8H, Vn.8H, Vm.16B
  kSaddw16Lo,  ///< SADDW  Vd.4S, Vn.4S, Vm.4H
  kSaddw16Hi,  ///< SADDW2 Vd.4S, Vn.4S, Vm.8H
  kUadalp,     ///< UADALP Vd.8H, Vn.16B
  kSadalp,     ///< SADALP Vd.4S, Vn.8H
};

class Verifier {
 public:
  // ---- configuration ------------------------------------------------

  /// Register a memory region every ctx.mem() access must fall inside.
  /// `vmin`/`vmax` bound the values i8 loads from the region may observe
  /// (seed of the interval analysis); `overread_slack` allows modeled
  /// gather spans to run that many bytes past the end (an emulation
  /// artifact of spans like direct conv's clamped row gather).
  /// Re-registering the same start address replaces the old region.
  void add_region(const void* p, i64 bytes, std::string name);
  void add_region(const void* p, i64 bytes, std::string name, i64 vmin,
                  i64 vmax, i64 overread_slack = 0);
  /// add_region unless [p, p+bytes) overlaps a registered region (pack
  /// helpers call this so driver-registered bounds always win — a pack
  /// claiming a larger span than the driver declared must not widen it).
  void ensure_region(const void* p, i64 bytes, std::string name);

  // ---- kernel scopes ------------------------------------------------

  void begin_scope(const KernelSpec& spec);
  void end_scope();

  // ---- instruction hooks (called by neon.h when a verifier is set) ---

  void on_load(Op op, const void* reg, VType t, const void* mem, bool half);
  void on_ld4r(const void* r0, const void* r1, const void* r2, const void* r3,
               const void* mem);
  void on_ld1x4(const void* r0, const void* r1, const void* r2, const void* r3,
                const void* mem);
  void on_store(Op op, const void* reg);
  void on_zero(const void* reg, VType t);
  void on_dup(const void* reg, VType t, i64 value);
  void on_mac(MacKind k, Op op, const void* acc, const void* a, const void* b);
  /// TBL/TBX product lookup: `dst` lanes take values from `table`'s lanes,
  /// or 0 (TBL) / their prior value (TBX) on an out-of-range index. Counts
  /// as a MAC-class instruction for the CAL/LD scheme conformance band.
  void on_tbl(const void* dst, const void* table, const void* idx, bool tbx);
  void on_widen(WidenKind k, Op op, const void* acc, const void* src);
  void on_sshll(const void* dst, const void* src, bool high);
  void on_and(const void* dst, const void* a, const void* b);
  void on_cnt(const void* dst, const void* src);
  void on_add(const void* acc, const void* v);
  /// ADD.16B byte-lane accumulate (the TBL scheme's first level): interval
  /// growth per lane, checked against the i8 range and the innermost
  /// scope's acc8_flush interval — MLA.16B's two hazards, same treatment.
  void on_add8(const void* acc, const void* v);
  void on_addv(const void* src);
  void on_mov_vx(u64 count);

  /// Cost-free definition markers (no instruction index, no tally): used
  /// where the emulation synthesizes a register without a modeled
  /// instruction (a C++ gather loop, a lane-subset broadcast).
  void def_value(const void* reg, VType t, i64 lo, i64 hi);
  void def_like(const void* dst, const void* src);

  /// Bounds check for one ctx.mem() access (also reachable through the
  /// free function hook in counters.h).
  void check_mem(const void* p, u64 bytes);

  // ---- reporting -----------------------------------------------------

  bool ok() const;
  std::vector<Violation> violations() const;
  i64 max_live_regs() const;
  /// OK when nothing was caught; otherwise kInvariantViolation with the
  /// first violation's location and a count of the rest.
  Status to_status() const;

 private:
  struct Region {
    const char* base = nullptr;
    i64 bytes = 0;
    std::string name;
    bool has_range = false;
    i64 vmin = 0, vmax = 0;
    i64 slack = 0;
  };

  struct Scope {
    KernelSpec spec;
    u64 begin_instr = 0;
    u64 loads = 0;      ///< LD1/LD1.8B/LD4R instructions in the scope
    u64 macs = 0;       ///< SMLAL/MLA/SDOT instructions in the scope
    u64 mov_vx = 0;     ///< spill moves tallied in the scope
    bool budget_flagged = false;
  };

  static constexpr size_t kMaxViolations = 100;

  // All private helpers assume mu_ is held.
  u64 next_instr() { return ++instr_; }
  void add_violation(u64 instr, Op op, const char* kind, std::string detail);
  VRegState& define(const void* reg, VType t, u64 instr);
  VRegState* use(const void* reg, VType t, Op op, u64 instr,
                 const char* operand);
  const Region* region_for(const void* p) const;
  void seed_load_lanes(VRegState& st, const void* mem, bool half);
  void check_lane_bounds(VRegState& st, const void* reg, Op op, u64 instr);
  void accumulate_mac(MacKind k, Op op, u64 instr, VRegState& acc,
                      VRegState& a, VRegState& b);

  mutable std::mutex mu_;
  std::vector<Region> regions_;
  std::vector<Scope> scopes_;  ///< innermost last (kernels do not nest today)
  RegFile regs_;
  std::vector<Violation> violations_;
  u64 instr_ = 0;
  i64 max_live_ = 0;
};

/// RAII kernel scope: opens the spec on the Ctx's verifier (no-op when
/// checked execution is off). Declared here so micro kernels need a single
/// line at the top of their body.
class VerifyScope {
 public:
  VerifyScope(Ctx& ctx, const KernelSpec& spec) : verifier_(ctx.verifier) {
    if (verifier_ != nullptr) verifier_->begin_scope(spec);
  }
  ~VerifyScope() {
    if (verifier_ != nullptr) verifier_->end_scope();
  }
  VerifyScope(const VerifyScope&) = delete;
  VerifyScope& operator=(const VerifyScope&) = delete;

 private:
  Verifier* verifier_;
};

}  // namespace lbc::armsim
