#include "armsim/counters.h"

namespace lbc::armsim {

std::string_view op_name(Op op) {
  switch (op) {
    case Op::kLd1: return "LD1.16B";
    case Op::kLd1_64: return "LD1.8B";
    case Op::kLd1x4: return "LD1x4";
    case Op::kLd4r: return "LD4R";
    case Op::kSt1: return "ST1";
    case Op::kSmlal8: return "SMLAL.8H";
    case Op::kSmlal16: return "SMLAL.4S";
    case Op::kMla8: return "MLA.16B";
    case Op::kSdot: return "SDOT.4S";
    case Op::kTbl: return "TBL.16B";
    case Op::kSaddw8: return "SADDW.8H";
    case Op::kSaddw16: return "SADDW.4S";
    case Op::kSshll: return "SSHLL";
    case Op::kMovi: return "MOVI";
    case Op::kMovVX: return "MOV v<->x";
    case Op::kDup: return "DUP";
    case Op::kAnd: return "AND";
    case Op::kCnt: return "CNT";
    case Op::kUadalp: return "UADALP";
    case Op::kSadalp: return "SADALP";
    case Op::kAddv: return "ADDV";
    case Op::kAdd: return "ADD";
    case Op::kShift: return "SHIFT";
    case Op::kScalar: return "scalar";
    case Op::kLoop: return "loop";
    case Op::kL1Miss: return "L1-miss";
    case Op::kL2Miss: return "L2-miss";
    case Op::kCount_: break;
  }
  return "?";
}

bool is_mem_op(Op op) {
  switch (op) {
    case Op::kLd1:
    case Op::kLd1_64:
    case Op::kLd1x4:
    case Op::kLd4r:
    case Op::kSt1:
      return true;
    default:
      return false;
  }
}

bool is_scalar_op(Op op) { return op == Op::kScalar || op == Op::kLoop; }

bool is_stall_op(Op op) { return op == Op::kL1Miss || op == Op::kL2Miss; }

u64 Counters::loads() const {
  return (*this)[Op::kLd1] + (*this)[Op::kLd1_64] + (*this)[Op::kLd1x4] +
         (*this)[Op::kLd4r];
}

u64 Counters::macs_instrs() const {
  return (*this)[Op::kSmlal8] + (*this)[Op::kSmlal16] + (*this)[Op::kMla8] +
         (*this)[Op::kSdot] + (*this)[Op::kTbl];
}

}  // namespace lbc::armsim
