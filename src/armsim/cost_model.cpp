#include "armsim/cost_model.h"

namespace lbc::armsim {

CostModel CostModel::cortex_a53() {
  // Two kinds of constants live here.
  //
  // Microarchitectural anchors (fixed by the paper / the A53 pipeline):
  //  * SMLAL.8H = MLA.16B = 1 cycle: same issue cost, so MLA retires 2x
  //    the byte-lane MACs per cycle ("MLA exhibits twice computation
  //    throughput than SMLAL", Sec. 3.4);
  //  * loads are several times more expensive than NEON ALU ops ("the load
  //    instruction is much slower than arithmetic instruction", Sec. 3.1).
  //
  // Calibrated effective throughputs (fitted once so the modeled Fig. 7
  // anchor ratios land on the paper's: ncnn ~= ours-8bit, ours-4bit ~1.5x,
  // ours-2bit ~2x on large layers). Values below 1.0 model instructions
  // that dual-issue or fold into neighbouring MACs in hand-scheduled
  // assembly (SSHLL pairs with SMLAL on the A53; SADDW/MOVI/MOV fill load
  // shadows). The *instruction counts* these multiply are measured, never
  // fitted — see DESIGN.md Sec. 2.
  CostModel m;
  auto set = [&m](Op op, double c) { m.cycles[static_cast<size_t>(op)] = c; };
  set(Op::kLd1, 3.0);
  set(Op::kLd1_64, 2.0);
  set(Op::kLd1x4, 6.0);  // 64-byte 4-register fill: two 32-byte load beats
  set(Op::kLd4r, 4.0);
  set(Op::kSt1, 3.0);
  set(Op::kSmlal8, 1.0);    // 8 int8 MACs / cycle
  set(Op::kSmlal16, 0.75);  // ncnn's 16-bit MACs, tuned-asm effective cost
  set(Op::kMla8, 1.0);      // 16 int8 MACs / cycle (2x SMLAL, Sec. 3.4)
  set(Op::kSdot, 1.0);      // v8.2 extension: 16 MACs straight to 32-bit
  // TBL scheme class: a single-register TBL.16B is a 1-cycle NEON op on the
  // A53, and each one answers 16 precomputed (weight, activation) products
  // — the per-product arithmetic the MLA scheme pays is folded into the
  // pack-time table build.
  set(Op::kTbl, 1.0);
  set(Op::kSaddw8, 0.6);
  set(Op::kSaddw16, 0.6);
  set(Op::kSshll, 0.4);
  set(Op::kMovi, 0.25);
  set(Op::kMovVX, 0.25);
  set(Op::kDup, 1.0);
  set(Op::kAnd, 1.0);
  set(Op::kCnt, 2.0);     // CNT.16B is a 2-cycle op on the 64-bit A53 pipe
  set(Op::kUadalp, 2.0);
  set(Op::kSadalp, 2.0);
  set(Op::kAddv, 3.0);
  set(Op::kAdd, 1.0);
  set(Op::kShift, 1.0);
  set(Op::kScalar, 1.0);
  set(Op::kLoop, 2.0);
  // Cache-miss stall costs (line fills; the in-order core hides little).
  set(Op::kL1Miss, 8.0);   // L2 hit latency
  set(Op::kL2Miss, 50.0);  // DRAM on the Pi 3B
  return m;
}

CostModel::Breakdown CostModel::breakdown(const Counters& c,
                                          bool interleaved) const {
  Breakdown b;
  for (size_t i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    const double cy = static_cast<double>(c.n[i]) * cycles[i];
    if (is_stall_op(op))
      b.stall_cycles += cy;
    else if (is_mem_op(op))
      b.mem_cycles += cy;
    else if (is_scalar_op(op))
      b.scalar_cycles += cy;
    else
      b.alu_cycles += cy;
  }
  const double mem = b.mem_cycles, alu = b.alu_cycles;
  const double neon = interleaved
                          ? (mem > alu ? mem + kappa * alu : alu + kappa * mem)
                          : mem + alu;
  b.total_cycles = neon + scalar_issue * b.scalar_cycles + b.stall_cycles;
  return b;
}

}  // namespace lbc::armsim
