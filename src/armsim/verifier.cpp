#include "armsim/verifier.h"

#include <algorithm>
#include <sstream>

namespace lbc::armsim {

namespace verifier_detail {

void check_mem(Verifier& v, const void* p, u64 bytes) { v.check_mem(p, bytes); }

}  // namespace verifier_detail

namespace {

LaneInterval mul_iv(const LaneInterval& x, const LaneInterval& y) {
  const i64 p0 = x.lo * y.lo, p1 = x.lo * y.hi, p2 = x.hi * y.lo,
            p3 = x.hi * y.hi;
  return LaneInterval{std::min(std::min(p0, p1), std::min(p2, p3)),
                      std::max(std::max(p0, p1), std::max(p2, p3))};
}

std::string iv_str(const LaneInterval& iv) {
  std::ostringstream os;
  os << "[" << iv.lo << ", " << iv.hi << "]";
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Regions
// ---------------------------------------------------------------------------

void Verifier::add_region(const void* p, i64 bytes, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  Region r;
  r.base = static_cast<const char*>(p);
  r.bytes = bytes;
  r.name = std::move(name);
  std::erase_if(regions_, [&](const Region& o) { return o.base == r.base; });
  regions_.push_back(std::move(r));
}

void Verifier::add_region(const void* p, i64 bytes, std::string name, i64 vmin,
                          i64 vmax, i64 overread_slack) {
  std::lock_guard<std::mutex> lock(mu_);
  Region r;
  r.base = static_cast<const char*>(p);
  r.bytes = bytes;
  r.name = std::move(name);
  r.has_range = true;
  r.vmin = vmin;
  r.vmax = vmax;
  r.slack = overread_slack;
  std::erase_if(regions_, [&](const Region& o) { return o.base == r.base; });
  regions_.push_back(std::move(r));
}

void Verifier::ensure_region(const void* p, i64 bytes, std::string name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const char* c = static_cast<const char*>(p);
    // Any overlap with an existing region means a driver already declared
    // bounds for this memory — those win. Registering the (possibly larger)
    // claimed span here would widen the bounds and hide the very overread
    // the bounds exist to catch; instead the span's excess trips check_mem
    // against the original region.
    for (const Region& r : regions_)
      if (c < r.base + r.bytes && c + bytes > r.base) return;
  }
  add_region(p, bytes, std::move(name));
}

const Verifier::Region* Verifier::region_for(const void* p) const {
  const char* c = static_cast<const char*>(p);
  for (const Region& r : regions_)
    if (c >= r.base && c < r.base + r.bytes) return &r;
  return nullptr;
}

void Verifier::check_mem(const void* p, u64 bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (regions_.empty()) return;  // nothing declared: bounds mode is off
  const Region* r = region_for(p);
  const char* c = static_cast<const char*>(p);
  if (r == nullptr) {
    std::ostringstream os;
    os << bytes << "-byte access at unregistered address (" << regions_.size()
       << " regions registered)";
    add_violation(instr_, Op::kLd1, "oob", os.str());
    return;
  }
  const i64 end_off = (c - r->base) + static_cast<i64>(bytes);
  if (end_off > r->bytes + r->slack) {
    std::ostringstream os;
    os << bytes << "-byte access at offset " << (c - r->base)
       << " overruns region '" << r->name << "' (" << r->bytes << " bytes";
    if (r->slack > 0) os << " + " << r->slack << " slack";
    os << ") by " << end_off - r->bytes - r->slack << " bytes";
    add_violation(instr_, Op::kLd1, "oob", os.str());
  }
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

void Verifier::begin_scope(const KernelSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Scope sc;
  sc.spec = spec;
  sc.begin_instr = instr_;
  scopes_.push_back(sc);
  regs_.clear();
}

void Verifier::end_scope() {
  std::lock_guard<std::mutex> lock(mu_);
  if (scopes_.empty()) return;
  const Scope& sc = scopes_.back();
  const KernelSpec& spec = sc.spec;
  if (spec.cal_ld_max > 0.0 && sc.loads >= 4) {
    const double ratio =
        static_cast<double>(sc.macs) / static_cast<double>(sc.loads);
    if (ratio < spec.cal_ld_min || ratio > spec.cal_ld_max) {
      std::ostringstream os;
      os << spec.name << ": measured CAL/LD ratio " << ratio << " (" << sc.macs
         << " MACs / " << sc.loads << " loads) outside the scheme band ["
         << spec.cal_ld_min << ", " << spec.cal_ld_max << "]";
      add_violation(instr_, Op::kSmlal8, "cal-ld-ratio", os.str());
    }
  }
  if (regs_.max_live() > RegFile::kArchRegs && sc.mov_vx == 0) {
    std::ostringstream os;
    os << spec.name << ": " << regs_.max_live()
       << " simultaneously-live vector registers exceed the " << RegFile::kArchRegs
       << "-entry register file but no v<->x spill (kMovVX) was charged";
    add_violation(instr_, Op::kMovVX, "spill-unaccounted", os.str());
  }
  max_live_ = std::max(max_live_, regs_.max_live());
  regs_.clear();
  scopes_.pop_back();
}

// ---------------------------------------------------------------------------
// Register definition / use
// ---------------------------------------------------------------------------

void Verifier::add_violation(u64 instr, Op op, const char* kind,
                             std::string detail) {
  if (violations_.size() >= kMaxViolations) return;
  Violation v;
  v.instr = instr;
  v.op = op;
  v.kind = kind;
  v.detail = std::move(detail);
  violations_.push_back(std::move(v));
}

VRegState& Verifier::define(const void* reg, VType t, u64 instr) {
  const bool fresh = regs_.find(reg) == nullptr;
  VRegState& st = regs_.def(reg, t, instr);
  if (fresh && !scopes_.empty()) {
    Scope& sc = scopes_.back();
    const i64 budget = RegFile::kArchRegs + sc.spec.spill_slots;
    if (regs_.live_count() > budget && !sc.budget_flagged) {
      sc.budget_flagged = true;
      std::ostringstream os;
      os << sc.spec.name << ": " << regs_.live_count()
         << " simultaneously-live vector registers exceed the "
         << RegFile::kArchRegs << "-entry register file";
      if (sc.spec.spill_slots > 0)
        os << " + " << sc.spec.spill_slots << " Alg. 1 spill slots";
      add_violation(instr, Op::kMovi, "reg-budget", os.str());
    }
  }
  return st;
}

VRegState* Verifier::use(const void* reg, VType t, Op op, u64 instr,
                         const char* operand) {
  VRegState* st = regs_.find(reg);
  if (st == nullptr || !st->initialized) {
    std::ostringstream os;
    os << std::string(op_name(op)) << " reads " << operand << " ("
       << vtype_name(t) << ") that was never written in this kernel scope";
    add_violation(instr, op, "uninit-read", os.str());
    // Define it with full type range so one mistake does not cascade.
    VRegState& fresh = regs_.def(reg, t, instr);
    for (int i = 0; i < fresh.lanes(); ++i)
      fresh.lane[static_cast<size_t>(i)] =
          LaneInterval{vtype_min(t), vtype_max(t)};
    return &fresh;
  }
  return st;
}

void Verifier::seed_load_lanes(VRegState& st, const void* mem, bool half) {
  i64 lo = vtype_min(st.type), hi = vtype_max(st.type);
  if (const Region* r = region_for(mem); r != nullptr && r->has_range) {
    lo = std::max(lo, r->vmin);
    hi = std::min(hi, r->vmax);
  }
  const int n = st.lanes();
  for (int i = 0; i < n; ++i)
    st.lane[static_cast<size_t>(i)] =
        (half && i >= n / 2) ? LaneInterval{0, 0} : LaneInterval{lo, hi};
}

void Verifier::check_lane_bounds(VRegState& st, const void* /*reg*/, Op op,
                                 u64 instr) {
  if (st.poisoned) return;
  const i64 lo = vtype_min(st.type), hi = vtype_max(st.type);
  for (int i = 0; i < st.lanes(); ++i) {
    LaneInterval& iv = st.lane[static_cast<size_t>(i)];
    if (iv.lo < lo || iv.hi > hi) {
      std::ostringstream os;
      os << std::string(op_name(op)) << " accumulation #" << st.accum
         << " can drive a " << vtype_name(st.type) << " lane to " << iv_str(iv)
         << ", outside [" << lo << ", " << hi
         << "] — flush (SADDW/SADALP) is overdue";
      add_violation(instr, op, "overflow", os.str());
      st.poisoned = true;
      // Clamp so the analysis continues sanely past the first report.
      for (int j = 0; j < st.lanes(); ++j) {
        LaneInterval& cv = st.lane[static_cast<size_t>(j)];
        cv.lo = std::max(cv.lo, lo);
        cv.hi = std::min(cv.hi, hi);
      }
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Instruction hooks
// ---------------------------------------------------------------------------

void Verifier::on_load(Op op, const void* reg, VType t, const void* mem,
                       bool half) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  if (!scopes_.empty()) scopes_.back().loads++;
  VRegState& st = define(reg, t, instr);
  seed_load_lanes(st, mem, half);
  (void)op;
}

void Verifier::on_ld4r(const void* r0, const void* r1, const void* r2,
                       const void* r3, const void* mem) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  if (!scopes_.empty()) scopes_.back().loads++;
  for (const void* reg : {r0, r1, r2, r3}) {
    VRegState& st = define(reg, VType::kS8, instr);
    seed_load_lanes(st, mem, /*half=*/false);
  }
}

void Verifier::on_ld1x4(const void* r0, const void* r1, const void* r2,
                        const void* r3, const void* mem) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  if (!scopes_.empty()) scopes_.back().loads++;
  const char* p = static_cast<const char*>(mem);
  int slot = 0;
  for (const void* reg : {r0, r1, r2, r3}) {
    VRegState& st = define(reg, VType::kS8, instr);
    seed_load_lanes(st, p + 16 * slot, /*half=*/false);
    ++slot;
  }
}

void Verifier::on_tbl(const void* dstp, const void* tablep, const void* idxp,
                      bool tbx) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  if (!scopes_.empty()) scopes_.back().macs++;
  VRegState* table = use(tablep, VType::kS8, Op::kTbl, instr, "its table");
  use(idxp, VType::kU8, Op::kTbl, instr, "its index vector");
  // A looked-up lane can observe any table lane, or — on an out-of-range
  // index — 0 (TBL) / its prior value (TBX). Hull over all of them.
  LaneInterval hull{0, 0};
  for (int i = 0; i < 16; ++i) {
    hull.lo = std::min(hull.lo, table->lane[static_cast<size_t>(i)].lo);
    hull.hi = std::max(hull.hi, table->lane[static_cast<size_t>(i)].hi);
  }
  if (tbx) {
    if (const VRegState* prior = regs_.find(dstp);
        prior != nullptr && prior->initialized) {
      for (int i = 0; i < 16; ++i) {
        hull.lo = std::min(hull.lo, prior->lane[static_cast<size_t>(i)].lo);
        hull.hi = std::max(hull.hi, prior->lane[static_cast<size_t>(i)].hi);
      }
    }
  }
  VRegState& d = define(dstp, VType::kS8, instr);
  for (int i = 0; i < 16; ++i) d.lane[static_cast<size_t>(i)] = hull;
}

void Verifier::on_store(Op op, const void* reg) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  use(reg, VType::kS32, op, instr, "the stored register");
}

void Verifier::on_zero(const void* reg, VType t) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  VRegState& st = define(reg, t, instr);
  for (int i = 0; i < st.lanes(); ++i)
    st.lane[static_cast<size_t>(i)] = LaneInterval{0, 0};
}

void Verifier::on_dup(const void* reg, VType t, i64 value) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  VRegState& st = define(reg, t, instr);
  for (int i = 0; i < st.lanes(); ++i)
    st.lane[static_cast<size_t>(i)] = LaneInterval{value, value};
}

void Verifier::accumulate_mac(MacKind k, Op op, u64 instr, VRegState& acc,
                              VRegState& a, VRegState& b) {
  acc.accum++;
  switch (k) {
    case MacKind::kSmlal8Lo:
    case MacKind::kSmlal8Hi: {
      const int off = (k == MacKind::kSmlal8Hi) ? 8 : 0;
      for (int i = 0; i < 8; ++i) {
        const LaneInterval p =
            mul_iv(a.lane[static_cast<size_t>(off + i)],
                   b.lane[static_cast<size_t>(off + i)]);
        acc.lane[static_cast<size_t>(i)].lo += p.lo;
        acc.lane[static_cast<size_t>(i)].hi += p.hi;
      }
      break;
    }
    case MacKind::kSmlal16Lo:
    case MacKind::kSmlal16Hi: {
      const int off = (k == MacKind::kSmlal16Hi) ? 4 : 0;
      for (int i = 0; i < 4; ++i) {
        const LaneInterval p =
            mul_iv(a.lane[static_cast<size_t>(off + i)],
                   b.lane[static_cast<size_t>(off + i)]);
        acc.lane[static_cast<size_t>(i)].lo += p.lo;
        acc.lane[static_cast<size_t>(i)].hi += p.hi;
      }
      break;
    }
    case MacKind::kMla8: {
      for (int i = 0; i < 16; ++i) {
        const LaneInterval p = mul_iv(a.lane[static_cast<size_t>(i)],
                                      b.lane[static_cast<size_t>(i)]);
        acc.lane[static_cast<size_t>(i)].lo += p.lo;
        acc.lane[static_cast<size_t>(i)].hi += p.hi;
      }
      break;
    }
    case MacKind::kSdot: {
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          const LaneInterval p =
              mul_iv(a.lane[static_cast<size_t>(4 * i + j)],
                     b.lane[static_cast<size_t>(4 * i + j)]);
          acc.lane[static_cast<size_t>(i)].lo += p.lo;
          acc.lane[static_cast<size_t>(i)].hi += p.hi;
        }
      }
      break;
    }
  }
  // Scheme conformance: flush-interval bound of the innermost scope.
  if (!scopes_.empty()) {
    const KernelSpec& spec = scopes_.back().spec;
    const int limit = (k == MacKind::kMla8) ? spec.acc8_flush
                      : (k == MacKind::kSmlal8Lo || k == MacKind::kSmlal8Hi)
                          ? spec.acc16_flush
                          : 0;
    if (limit > 0 && acc.accum == limit + 1) {
      std::ostringstream os;
      os << spec.name << ": accumulation #" << acc.accum << " into a "
         << vtype_name(acc.type)
         << " accumulator exceeds the declared flush interval " << limit;
      add_violation(instr, op, "flush-interval", os.str());
    }
  }
}

void Verifier::on_mac(MacKind k, Op op, const void* accp, const void* ap,
                      const void* bp) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  if (!scopes_.empty()) scopes_.back().macs++;
  const VType acc_t = (k == MacKind::kMla8)                ? VType::kS8
                      : (k == MacKind::kSmlal8Lo ||
                         k == MacKind::kSmlal8Hi)          ? VType::kS16
                                                           : VType::kS32;
  const VType src_t = (k == MacKind::kSmlal16Lo || k == MacKind::kSmlal16Hi)
                          ? VType::kS16
                          : VType::kS8;
  VRegState* acc = use(accp, acc_t, op, instr, "its accumulator");
  VRegState* a = use(ap, src_t, op, instr, "operand a");
  VRegState* b = use(bp, src_t, op, instr, "operand b");
  accumulate_mac(k, op, instr, *acc, *a, *b);
  check_lane_bounds(*acc, accp, op, instr);
}

void Verifier::on_widen(WidenKind k, Op op, const void* accp,
                        const void* srcp) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  VType acc_t = VType::kS32, src_t = VType::kS16;
  switch (k) {
    case WidenKind::kSaddw8Lo:
    case WidenKind::kSaddw8Hi:
      acc_t = VType::kS16;
      src_t = VType::kS8;
      break;
    case WidenKind::kSaddw16Lo:
    case WidenKind::kSaddw16Hi:
      break;
    case WidenKind::kUadalp:
      acc_t = VType::kU16;
      src_t = VType::kU8;
      break;
    case WidenKind::kSadalp:
      acc_t = VType::kS32;
      src_t = VType::kU16;
      break;
  }
  VRegState* acc = use(accp, acc_t, op, instr, "its accumulator");
  VRegState* src = use(srcp, src_t, op, instr, "its source");
  switch (k) {
    case WidenKind::kSaddw8Lo:
    case WidenKind::kSaddw8Hi: {
      const int off = (k == WidenKind::kSaddw8Hi) ? 8 : 0;
      for (int i = 0; i < 8; ++i) {
        acc->lane[static_cast<size_t>(i)].lo +=
            src->lane[static_cast<size_t>(off + i)].lo;
        acc->lane[static_cast<size_t>(i)].hi +=
            src->lane[static_cast<size_t>(off + i)].hi;
      }
      // SADDW.8H is the TBL scheme's i16 accumulate: schemes whose spec
      // declares a 16-bit flush interval must zero the accumulator before
      // exceeding it, exactly like SMLAL.8H MACs in accumulate_mac. Schemes
      // that accumulate 16-bit lanes through MACs instead (SMLAL) flush via
      // SADDW.4S, so this bound never double-fires.
      acc->accum++;
      if (!scopes_.empty()) {
        const KernelSpec& spec = scopes_.back().spec;
        if (spec.acc16_flush > 0 && acc->accum == spec.acc16_flush + 1) {
          std::ostringstream os;
          os << spec.name << ": widening accumulation #" << acc->accum
             << " into a " << vtype_name(acc->type)
             << " accumulator exceeds the declared flush interval "
             << spec.acc16_flush;
          add_violation(instr, op, "flush-interval", os.str());
        }
      }
      break;
    }
    case WidenKind::kSaddw16Lo:
    case WidenKind::kSaddw16Hi: {
      const int off = (k == WidenKind::kSaddw16Hi) ? 4 : 0;
      for (int i = 0; i < 4; ++i) {
        acc->lane[static_cast<size_t>(i)].lo +=
            src->lane[static_cast<size_t>(off + i)].lo;
        acc->lane[static_cast<size_t>(i)].hi +=
            src->lane[static_cast<size_t>(off + i)].hi;
      }
      break;
    }
    case WidenKind::kUadalp: {
      for (int i = 0; i < 8; ++i) {
        acc->lane[static_cast<size_t>(i)].lo +=
            src->lane[static_cast<size_t>(2 * i)].lo +
            src->lane[static_cast<size_t>(2 * i + 1)].lo;
        acc->lane[static_cast<size_t>(i)].hi +=
            src->lane[static_cast<size_t>(2 * i)].hi +
            src->lane[static_cast<size_t>(2 * i + 1)].hi;
      }
      break;
    }
    case WidenKind::kSadalp: {
      for (int i = 0; i < 4; ++i) {
        acc->lane[static_cast<size_t>(i)].lo +=
            src->lane[static_cast<size_t>(2 * i)].lo +
            src->lane[static_cast<size_t>(2 * i + 1)].lo;
        acc->lane[static_cast<size_t>(i)].hi +=
            src->lane[static_cast<size_t>(2 * i)].hi +
            src->lane[static_cast<size_t>(2 * i + 1)].hi;
      }
      break;
    }
  }
  check_lane_bounds(*acc, accp, op, instr);
}

void Verifier::on_sshll(const void* dst, const void* src, bool high) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  VRegState* s = use(src, VType::kS8, Op::kSshll, instr, "its source");
  VRegState& d = define(dst, VType::kS16, instr);
  const int off = high ? 8 : 0;
  for (int i = 0; i < 8; ++i)
    d.lane[static_cast<size_t>(i)] = s->lane[static_cast<size_t>(off + i)];
}

void Verifier::on_and(const void* dst, const void* a, const void* b) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  VRegState* av = use(a, VType::kU8, Op::kAnd, instr, "operand a");
  VRegState* bv = use(b, VType::kU8, Op::kAnd, instr, "operand b");
  VRegState& d = define(dst, VType::kU8, instr);
  for (int i = 0; i < 16; ++i)
    d.lane[static_cast<size_t>(i)] =
        LaneInterval{0, std::min(av->lane[static_cast<size_t>(i)].hi,
                                 bv->lane[static_cast<size_t>(i)].hi)};
}

void Verifier::on_cnt(const void* dst, const void* src) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  use(src, VType::kU8, Op::kCnt, instr, "its source");
  VRegState& d = define(dst, VType::kU8, instr);
  for (int i = 0; i < 16; ++i)
    d.lane[static_cast<size_t>(i)] = LaneInterval{0, 8};
}

void Verifier::on_add(const void* accp, const void* vp) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  VRegState* acc = use(accp, VType::kS32, Op::kAdd, instr, "its accumulator");
  VRegState* v = use(vp, VType::kS32, Op::kAdd, instr, "its source");
  for (int i = 0; i < 4; ++i) {
    acc->lane[static_cast<size_t>(i)].lo += v->lane[static_cast<size_t>(i)].lo;
    acc->lane[static_cast<size_t>(i)].hi += v->lane[static_cast<size_t>(i)].hi;
  }
  check_lane_bounds(*acc, accp, Op::kAdd, instr);
}

void Verifier::on_add8(const void* accp, const void* vp) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  VRegState* acc = use(accp, VType::kS8, Op::kAdd, instr, "its accumulator");
  VRegState* v = use(vp, VType::kS8, Op::kAdd, instr, "its source");
  acc->accum++;
  for (int i = 0; i < 16; ++i) {
    acc->lane[static_cast<size_t>(i)].lo += v->lane[static_cast<size_t>(i)].lo;
    acc->lane[static_cast<size_t>(i)].hi += v->lane[static_cast<size_t>(i)].hi;
  }
  if (!scopes_.empty()) {
    const KernelSpec& spec = scopes_.back().spec;
    if (spec.acc8_flush > 0 && acc->accum == spec.acc8_flush + 1) {
      std::ostringstream os;
      os << spec.name << ": byte accumulation #" << acc->accum
         << " exceeds the declared flush interval " << spec.acc8_flush;
      add_violation(instr, Op::kAdd, "flush-interval", os.str());
    }
  }
  check_lane_bounds(*acc, accp, Op::kAdd, instr);
}

void Verifier::on_addv(const void* src) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 instr = next_instr();
  use(src, VType::kS32, Op::kAddv, instr, "its source");
}

void Verifier::on_mov_vx(u64 count) {
  std::lock_guard<std::mutex> lock(mu_);
  instr_ += count;
  if (!scopes_.empty()) scopes_.back().mov_vx += count;
}

void Verifier::def_value(const void* reg, VType t, i64 lo, i64 hi) {
  std::lock_guard<std::mutex> lock(mu_);
  VRegState& st = define(reg, t, instr_);
  for (int i = 0; i < st.lanes(); ++i)
    st.lane[static_cast<size_t>(i)] = LaneInterval{lo, hi};
}

void Verifier::def_like(const void* dst, const void* src) {
  std::lock_guard<std::mutex> lock(mu_);
  const VRegState* s = regs_.find(src);
  if (s == nullptr) return;
  const VRegState copy = *s;  // define() may rehash and invalidate `s`
  VRegState& d = define(dst, copy.type, instr_);
  d.lane = copy.lane;
  d.accum = copy.accum;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

bool Verifier::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_.empty();
}

std::vector<Violation> Verifier::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

i64 Verifier::max_live_regs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::max(max_live_, regs_.max_live());
}

Status Verifier::to_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (violations_.empty()) return Status();
  const Violation& v = violations_.front();
  std::ostringstream os;
  os << v.kind << " at instruction #" << v.instr << " ("
     << std::string(op_name(v.op)) << "): " << v.detail;
  if (violations_.size() > 1)
    os << " (+" << violations_.size() - 1 << " more violations)";
  return Status::invariant_violation(os.str());
}

}  // namespace lbc::armsim
