#include "armsim/regfile.h"

namespace lbc::armsim {

const char* vtype_name(VType t) {
  switch (t) {
    case VType::kS8: return "s8";
    case VType::kS16: return "s16";
    case VType::kS32: return "s32";
    case VType::kU8: return "u8";
    case VType::kU16: return "u16";
  }
  return "?";
}

}  // namespace lbc::armsim
