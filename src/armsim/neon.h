// Functional emulation of the ARMv8.1 NEON (AdvSIMD) instructions used by
// the paper's kernels (Sec. 2.3, 3.3): LD1 / LD4R / ST1 / SMLAL(2) / MLA /
// SADDW(2) / SSHLL(2) / MOVI / AND / CNT / UADALP / SADALP / ADDV, plus
// TBL / TBX for the lookup-table scheme (DESIGN.md Sec. 16).
//
// Semantics are bit-faithful: SMLAL widens before accumulating; MLA
// accumulates modulo 2^8 (non-saturating wrap, like the hardware), which is
// exactly why the paper's MLA:SADDW ratio analysis matters — exceeding it
// silently corrupts results, and the overflow property tests pin this down.
//
// Every instruction takes a Ctx& and tallies itself; the emulation cost is
// one counter increment plus a fixed-size lane loop that the host compiler
// vectorizes, so full layers run in milliseconds.
//
// Checked execution: when ctx.verifier is set (verifier.h), each instruction
// additionally reports itself to the verifier. The hook runs BEFORE the
// ctx.mem() cache access so an out-of-bounds access is blamed on the
// instruction being emulated; tally/cache increments are order-insensitive
// within one instruction, so counters stay bit-identical either way. With a
// null verifier every hook is one untaken branch.
#pragma once

#include <array>

#include "armsim/counters.h"
#include "armsim/verifier.h"
#include "common/types.h"

namespace lbc::armsim {

struct int8x16 {
  std::array<i8, 16> v{};
};
struct int16x8 {
  std::array<i16, 8> v{};
};
struct int32x4 {
  std::array<i32, 4> v{};
};
struct uint8x16 {
  std::array<u8, 16> v{};
};
struct uint16x8 {
  std::array<u16, 8> v{};
};

// ---------------------------------------------------------------------------
// Loads / stores
// ---------------------------------------------------------------------------

/// LD1 {Vt.16B}, [Xn] — contiguous 16-byte load into a caller-provided
/// register. Destination-out-parameter style (like movi_zero/dup_s16)
/// throughout: the verifier identifies registers by host object address, and
/// a value-returning form would track the callee's local — these 16-byte
/// structs come back in machine registers on common ABIs, so the address
/// never survives the return.
inline void ld1_s8(Ctx& ctx, const i8* p, int8x16& r) {
  ctx.tally(Op::kLd1);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_load(Op::kLd1, &r, VType::kS8, p, /*half=*/false);
  ctx.mem(p, 16);
  for (int i = 0; i < 16; ++i) r.v[i] = p[i];
}

/// LD1 {Vt.8B}, [Xn] — 8-byte load into the low half (high half zero).
inline void ld1_s8_64(Ctx& ctx, const i8* p, int8x16& r) {
  ctx.tally(Op::kLd1_64);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_load(Op::kLd1_64, &r, VType::kS8, p, /*half=*/true);
  ctx.mem(p, 8);
  r.v.fill(0);
  for (int i = 0; i < 8; ++i) r.v[i] = p[i];
}

inline void ld1_u8(Ctx& ctx, const u8* p, uint8x16& r) {
  ctx.tally(Op::kLd1);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_load(Op::kLd1, &r, VType::kU8, p, /*half=*/false);
  ctx.mem(p, 16);
  for (int i = 0; i < 16; ++i) r.v[i] = p[i];
}

/// LD1 {Vt1.16B-Vt4.16B}, [Xn] — 64-byte contiguous load filling four
/// registers in one instruction. The TBL scheme streams its four packed
/// per-column product tables (one cache line) through this.
inline void ld1x4_s8(Ctx& ctx, const i8* p, int8x16 out[4]) {
  ctx.tally(Op::kLd1x4);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_ld1x4(&out[0], &out[1], &out[2], &out[3], p);
  ctx.mem(p, 64);
  for (int r = 0; r < 4; ++r)
    for (int i = 0; i < 16; ++i) out[r].v[i] = p[r * 16 + i];
}

/// LD4R {V0.16B..V3.16B}, [Xn] — load 4 bytes, replicate each across one
/// register. This is the single-load-replicate instruction behind the
/// re-designed GEMM (Fig. 1b, theta_2 = 4).
inline void ld4r_s8(Ctx& ctx, const i8* p, int8x16 out[4]) {
  ctx.tally(Op::kLd4r);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_ld4r(&out[0], &out[1], &out[2], &out[3], p);
  ctx.mem(p, 4);
  for (int r = 0; r < 4; ++r)
    for (int i = 0; i < 16; ++i) out[r].v[i] = p[r];
}

/// ST1 {Vt.4S}, [Xn].
inline void st1_s32(Ctx& ctx, const int32x4& v, i32* p) {
  ctx.tally(Op::kSt1);
  if (ctx.verifier != nullptr) ctx.verifier->on_store(Op::kSt1, &v);
  ctx.mem(p, 16);
  for (int i = 0; i < 4; ++i) p[i] = v.v[i];
}

inline void st1_s8(Ctx& ctx, const int8x16& v, i8* p) {
  ctx.tally(Op::kSt1);
  if (ctx.verifier != nullptr) ctx.verifier->on_store(Op::kSt1, &v);
  ctx.mem(p, 16);
  for (int i = 0; i < 16; ++i) p[i] = v.v[i];
}

// ---------------------------------------------------------------------------
// Multiply-accumulate
// ---------------------------------------------------------------------------

/// SMLAL Vd.8H, Vn.8B, Vm.8B — widen-multiply the LOW 8 byte lanes and
/// accumulate into a 16-bit register (wraps mod 2^16 if the paper's
/// SMLAL:SADDW ratio were violated).
inline void smlal_s8(Ctx& ctx, int16x8& acc, const int8x16& a, const int8x16& b) {
  ctx.tally(Op::kSmlal8);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_mac(MacKind::kSmlal8Lo, Op::kSmlal8, &acc, &a, &b);
  for (int i = 0; i < 8; ++i) {
    const i32 prod = static_cast<i32>(a.v[i]) * static_cast<i32>(b.v[i]);
    acc.v[i] = static_cast<i16>(static_cast<u16>(acc.v[i]) + static_cast<u16>(prod));
  }
}

/// SMLAL2 Vd.8H, Vn.16B, Vm.16B — same, HIGH 8 byte lanes.
inline void smlal2_s8(Ctx& ctx, int16x8& acc, const int8x16& a, const int8x16& b) {
  ctx.tally(Op::kSmlal8);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_mac(MacKind::kSmlal8Hi, Op::kSmlal8, &acc, &a, &b);
  for (int i = 0; i < 8; ++i) {
    const i32 prod =
        static_cast<i32>(a.v[8 + i]) * static_cast<i32>(b.v[8 + i]);
    acc.v[i] = static_cast<i16>(static_cast<u16>(acc.v[i]) + static_cast<u16>(prod));
  }
}

/// SMLAL Vd.4S, Vn.4H, Vm.4H — 16-bit lanes into 32-bit accumulators (the
/// instruction ncnn's 8-bit scheme is built on).
inline void smlal_s16(Ctx& ctx, int32x4& acc, const int16x8& a, const int16x8& b) {
  ctx.tally(Op::kSmlal16);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_mac(MacKind::kSmlal16Lo, Op::kSmlal16, &acc, &a, &b);
  for (int i = 0; i < 4; ++i)
    acc.v[i] += static_cast<i32>(a.v[i]) * static_cast<i32>(b.v[i]);
}

/// SMLAL2 Vd.4S, Vn.8H, Vm.8H — high 4 halfword lanes.
inline void smlal2_s16(Ctx& ctx, int32x4& acc, const int16x8& a, const int16x8& b) {
  ctx.tally(Op::kSmlal16);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_mac(MacKind::kSmlal16Hi, Op::kSmlal16, &acc, &a, &b);
  for (int i = 0; i < 4; ++i)
    acc.v[i] += static_cast<i32>(a.v[4 + i]) * static_cast<i32>(b.v[4 + i]);
}

/// MLA Vd.16B, Vn.16B, Vm.16B — 16 byte-lane MACs, accumulating mod 2^8.
/// Twice the per-instruction MAC width of SMLAL on byte lanes (Sec. 3.4).
inline void mla_s8(Ctx& ctx, int8x16& acc, const int8x16& a, const int8x16& b) {
  ctx.tally(Op::kMla8);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_mac(MacKind::kMla8, Op::kMla8, &acc, &a, &b);
  for (int i = 0; i < 16; ++i) {
    const u8 prod = static_cast<u8>(static_cast<u8>(a.v[i]) * static_cast<u8>(b.v[i]));
    acc.v[i] = static_cast<i8>(static_cast<u8>(static_cast<u8>(acc.v[i]) + prod));
  }
}

/// SDOT Vd.4S, Vn.16B, Vm.16B — ARMv8.2 dot-product extension: each 32-bit
/// lane accumulates the dot product of the corresponding four byte lanes.
/// Not available on the paper's ARMv8.1 target (Sec. 2.3); provided for
/// the v8.2 extension kernel (ext_sdot bench) that quantifies what the
/// paper's 2-8-bit schemes are competing against on newer cores.
inline void sdot_s8(Ctx& ctx, int32x4& acc, const int8x16& a, const int8x16& b) {
  ctx.tally(Op::kSdot);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_mac(MacKind::kSdot, Op::kSdot, &acc, &a, &b);
  for (int i = 0; i < 4; ++i) {
    i32 dot = 0;
    for (int j = 0; j < 4; ++j)
      dot += static_cast<i32>(a.v[4 * i + j]) * static_cast<i32>(b.v[4 * i + j]);
    acc.v[i] += dot;
  }
}

// ---------------------------------------------------------------------------
// Table lookups (the TBL scheme, 2-3 bit; DESIGN.md Sec. 16)
// ---------------------------------------------------------------------------

/// TBL Vd.16B, {Vn.16B}, Vm.16B — per-byte table lookup: each destination
/// byte takes table[idx] for idx < 16 and 0 otherwise (the architectural
/// out-of-range behaviour of the single-register form). With a 16-entry
/// precomputed product table this answers 16 (weight, activation) products
/// in one 1-cycle shuffle — the emulated twin of the AVX2 pshufb LUT.
inline void tbl_s8(Ctx& ctx, int8x16& r, const int8x16& table,
                   const uint8x16& idx) {
  ctx.tally(Op::kTbl);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_tbl(&r, &table, &idx, /*tbx=*/false);
  for (int i = 0; i < 16; ++i)
    r.v[i] = (idx.v[i] < 16) ? table.v[idx.v[i]] : i8{0};
}

/// TBX Vd.16B, {Vn.16B}, Vm.16B — like TBL, but an out-of-range index
/// leaves the destination byte unchanged (insert semantics).
inline void tbx_s8(Ctx& ctx, int8x16& r, const int8x16& table,
                   const uint8x16& idx) {
  ctx.tally(Op::kTbl);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_tbl(&r, &table, &idx, /*tbx=*/true);
  for (int i = 0; i < 16; ++i)
    if (idx.v[i] < 16) r.v[i] = table.v[idx.v[i]];
}

// ---------------------------------------------------------------------------
// Widening adds (the SADDW family the instruction schemes flush through)
// ---------------------------------------------------------------------------

/// SADDW Vd.8H, Vn.8H, Vm.8B — accumulate sign-extended LOW byte lanes.
inline void saddw_s8(Ctx& ctx, int16x8& acc, const int8x16& v) {
  ctx.tally(Op::kSaddw8);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_widen(WidenKind::kSaddw8Lo, Op::kSaddw8, &acc, &v);
  for (int i = 0; i < 8; ++i)
    acc.v[i] = static_cast<i16>(acc.v[i] + static_cast<i16>(v.v[i]));
}

/// SADDW2 Vd.8H, Vn.8H, Vm.16B — HIGH byte lanes.
inline void saddw2_s8(Ctx& ctx, int16x8& acc, const int8x16& v) {
  ctx.tally(Op::kSaddw8);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_widen(WidenKind::kSaddw8Hi, Op::kSaddw8, &acc, &v);
  for (int i = 0; i < 8; ++i)
    acc.v[i] = static_cast<i16>(acc.v[i] + static_cast<i16>(v.v[8 + i]));
}

/// SADDW Vd.4S, Vn.4S, Vm.4H — accumulate sign-extended LOW halfword lanes.
inline void saddw_s16(Ctx& ctx, int32x4& acc, const int16x8& v) {
  ctx.tally(Op::kSaddw16);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_widen(WidenKind::kSaddw16Lo, Op::kSaddw16, &acc, &v);
  for (int i = 0; i < 4; ++i) acc.v[i] += static_cast<i32>(v.v[i]);
}

/// SADDW2 Vd.4S, Vn.4S, Vm.8H — HIGH halfword lanes.
inline void saddw2_s16(Ctx& ctx, int32x4& acc, const int16x8& v) {
  ctx.tally(Op::kSaddw16);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_widen(WidenKind::kSaddw16Hi, Op::kSaddw16, &acc, &v);
  for (int i = 0; i < 4; ++i) acc.v[i] += static_cast<i32>(v.v[4 + i]);
}

// ---------------------------------------------------------------------------
// Widening moves, zeroing, register moves
// ---------------------------------------------------------------------------

/// SSHLL Vd.8H, Vn.8B, #0 — sign-extend the low 8 bytes.
inline void sshll_s8(Ctx& ctx, int16x8& r, const int8x16& v) {
  ctx.tally(Op::kSshll);
  if (ctx.verifier != nullptr) ctx.verifier->on_sshll(&r, &v, /*high=*/false);
  for (int i = 0; i < 8; ++i) r.v[i] = static_cast<i16>(v.v[i]);
}

/// SSHLL2 Vd.8H, Vn.16B, #0 — sign-extend the high 8 bytes.
inline void sshll2_s8(Ctx& ctx, int16x8& r, const int8x16& v) {
  ctx.tally(Op::kSshll);
  if (ctx.verifier != nullptr) ctx.verifier->on_sshll(&r, &v, /*high=*/true);
  for (int i = 0; i < 8; ++i) r.v[i] = static_cast<i16>(v.v[8 + i]);
}

inline void movi_zero(Ctx& ctx, int8x16& v) {
  ctx.tally(Op::kMovi);
  if (ctx.verifier != nullptr) ctx.verifier->on_zero(&v, VType::kS8);
  v.v.fill(0);
}
inline void movi_zero(Ctx& ctx, int16x8& v) {
  ctx.tally(Op::kMovi);
  if (ctx.verifier != nullptr) ctx.verifier->on_zero(&v, VType::kS16);
  v.v.fill(0);
}
inline void movi_zero(Ctx& ctx, int32x4& v) {
  ctx.tally(Op::kMovi);
  if (ctx.verifier != nullptr) ctx.verifier->on_zero(&v, VType::kS32);
  v.v.fill(0);
}
inline void movi_zero(Ctx& ctx, uint16x8& v) {
  ctx.tally(Op::kMovi);
  if (ctx.verifier != nullptr) ctx.verifier->on_zero(&v, VType::kU16);
  v.v.fill(0);
}

/// DUP Vd.8H, Wn — broadcast one halfword.
inline void dup_s16(Ctx& ctx, int16x8& r, i16 value) {
  ctx.tally(Op::kDup);
  if (ctx.verifier != nullptr) ctx.verifier->on_dup(&r, VType::kS16, value);
  r.v.fill(value);
}

/// Cost-only marker for the v-register <-> x-register spills of Alg. 1
/// (lines 10 and 13): the emulator has unlimited registers, so the data
/// movement is a no-op, but its cycle cost must be charged.
inline void mov_vx(Ctx& ctx, u64 count = 1) {
  ctx.tally(Op::kMovVX, count);
  if (ctx.verifier != nullptr) ctx.verifier->on_mov_vx(count);
}

// ---------------------------------------------------------------------------
// Checked-execution definition markers (no cost, no tally)
// ---------------------------------------------------------------------------

/// Declare to the verifier that `r` holds values in [lo, hi] — used where a
/// kernel synthesizes a register with plain C++ (a gather loop) instead of a
/// modeled instruction. No-ops without a verifier; never affects counters.
inline void def_reg(Ctx& ctx, const int8x16& r, i64 lo, i64 hi) {
  if (ctx.verifier != nullptr) ctx.verifier->def_value(&r, VType::kS8, lo, hi);
}
inline void def_reg(Ctx& ctx, const int32x4& r, i64 lo, i64 hi) {
  if (ctx.verifier != nullptr) ctx.verifier->def_value(&r, VType::kS32, lo, hi);
}

/// Declare `dst` as holding the same lane intervals as `src` (a lane
/// permutation or broadcast done in plain C++).
inline void def_like(Ctx& ctx, const int8x16& dst, const int8x16& src) {
  if (ctx.verifier != nullptr) ctx.verifier->def_like(&dst, &src);
}

// ---------------------------------------------------------------------------
// Bit-serial support (the TVM popcount baseline, Sec. 6 / Fig. 9)
// ---------------------------------------------------------------------------

inline void and_u8(Ctx& ctx, uint8x16& r, const uint8x16& a,
                   const uint8x16& b) {
  ctx.tally(Op::kAnd);
  if (ctx.verifier != nullptr) ctx.verifier->on_and(&r, &a, &b);
  for (int i = 0; i < 16; ++i) r.v[i] = static_cast<u8>(a.v[i] & b.v[i]);
}

/// CNT Vd.16B, Vn.16B — per-byte population count.
inline void cnt_u8(Ctx& ctx, uint8x16& r, const uint8x16& a) {
  ctx.tally(Op::kCnt);
  if (ctx.verifier != nullptr) ctx.verifier->on_cnt(&r, &a);
  for (int i = 0; i < 16; ++i)
    r.v[i] = static_cast<u8>(__builtin_popcount(a.v[i]));
}

/// UADALP Vd.8H, Vn.16B — pairwise widening add-accumulate.
inline void uadalp_u8(Ctx& ctx, uint16x8& acc, const uint8x16& v) {
  ctx.tally(Op::kUadalp);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_widen(WidenKind::kUadalp, Op::kUadalp, &acc, &v);
  for (int i = 0; i < 8; ++i)
    acc.v[i] = static_cast<u16>(acc.v[i] + v.v[2 * i] + v.v[2 * i + 1]);
}

/// SADALP Vd.4S, Vn.8H (on unsigned counts the sign never matters here).
inline void sadalp_u16(Ctx& ctx, int32x4& acc, const uint16x8& v) {
  ctx.tally(Op::kSadalp);
  if (ctx.verifier != nullptr)
    ctx.verifier->on_widen(WidenKind::kSadalp, Op::kSadalp, &acc, &v);
  for (int i = 0; i < 4; ++i)
    acc.v[i] += static_cast<i32>(v.v[2 * i]) + static_cast<i32>(v.v[2 * i + 1]);
}

/// ADDV Sd, Vn.4S — across-vector sum.
inline i32 addv_s32(Ctx& ctx, const int32x4& v) {
  ctx.tally(Op::kAddv);
  if (ctx.verifier != nullptr) ctx.verifier->on_addv(&v);
  return v.v[0] + v.v[1] + v.v[2] + v.v[3];
}

/// ADD Vd.16B, Vn.16B, Vm.16B — byte-lane add, wrapping mod 2^8. The TBL
/// scheme's first accumulation level: each add folds one looked-up table
/// entry into a byte accumulator (flushed per tbl_flush_interval).
inline void add_s8(Ctx& ctx, int8x16& acc, const int8x16& v) {
  ctx.tally(Op::kAdd);
  if (ctx.verifier != nullptr) ctx.verifier->on_add8(&acc, &v);
  for (int i = 0; i < 16; ++i)
    acc.v[i] = static_cast<i8>(
        static_cast<u8>(static_cast<u8>(acc.v[i]) + static_cast<u8>(v.v[i])));
}

inline void add_s32(Ctx& ctx, int32x4& acc, const int32x4& v) {
  ctx.tally(Op::kAdd);
  if (ctx.verifier != nullptr) ctx.verifier->on_add(&acc, &v);
  for (int i = 0; i < 4; ++i) acc.v[i] += v.v[i];
}

}  // namespace lbc::armsim
