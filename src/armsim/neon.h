// Functional emulation of the ARMv8.1 NEON (AdvSIMD) instructions used by
// the paper's kernels (Sec. 2.3, 3.3): LD1 / LD4R / ST1 / SMLAL(2) / MLA /
// SADDW(2) / SSHLL(2) / MOVI / AND / CNT / UADALP / SADALP / ADDV.
//
// Semantics are bit-faithful: SMLAL widens before accumulating; MLA
// accumulates modulo 2^8 (non-saturating wrap, like the hardware), which is
// exactly why the paper's MLA:SADDW ratio analysis matters — exceeding it
// silently corrupts results, and the overflow property tests pin this down.
//
// Every instruction takes a Ctx& and tallies itself; the emulation cost is
// one counter increment plus a fixed-size lane loop that the host compiler
// vectorizes, so full layers run in milliseconds.
#pragma once

#include <array>

#include "armsim/counters.h"
#include "common/types.h"

namespace lbc::armsim {

struct int8x16 {
  std::array<i8, 16> v{};
};
struct int16x8 {
  std::array<i16, 8> v{};
};
struct int32x4 {
  std::array<i32, 4> v{};
};
struct uint8x16 {
  std::array<u8, 16> v{};
};
struct uint16x8 {
  std::array<u16, 8> v{};
};

// ---------------------------------------------------------------------------
// Loads / stores
// ---------------------------------------------------------------------------

/// LD1 {Vt.16B}, [Xn] — contiguous 16-byte load.
inline int8x16 ld1_s8(Ctx& ctx, const i8* p) {
  ctx.tally(Op::kLd1);
  ctx.mem(p, 16);
  int8x16 r;
  for (int i = 0; i < 16; ++i) r.v[i] = p[i];
  return r;
}

/// LD1 {Vt.8B}, [Xn] — 8-byte load into the low half (high half zero).
inline int8x16 ld1_s8_64(Ctx& ctx, const i8* p) {
  ctx.tally(Op::kLd1_64);
  ctx.mem(p, 8);
  int8x16 r;
  for (int i = 0; i < 8; ++i) r.v[i] = p[i];
  return r;
}

inline uint8x16 ld1_u8(Ctx& ctx, const u8* p) {
  ctx.tally(Op::kLd1);
  ctx.mem(p, 16);
  uint8x16 r;
  for (int i = 0; i < 16; ++i) r.v[i] = p[i];
  return r;
}

/// LD4R {V0.16B..V3.16B}, [Xn] — load 4 bytes, replicate each across one
/// register. This is the single-load-replicate instruction behind the
/// re-designed GEMM (Fig. 1b, theta_2 = 4).
inline void ld4r_s8(Ctx& ctx, const i8* p, int8x16 out[4]) {
  ctx.tally(Op::kLd4r);
  ctx.mem(p, 4);
  for (int r = 0; r < 4; ++r)
    for (int i = 0; i < 16; ++i) out[r].v[i] = p[r];
}

/// ST1 {Vt.4S}, [Xn].
inline void st1_s32(Ctx& ctx, const int32x4& v, i32* p) {
  ctx.tally(Op::kSt1);
  ctx.mem(p, 16);
  for (int i = 0; i < 4; ++i) p[i] = v.v[i];
}

inline void st1_s8(Ctx& ctx, const int8x16& v, i8* p) {
  ctx.tally(Op::kSt1);
  ctx.mem(p, 16);
  for (int i = 0; i < 16; ++i) p[i] = v.v[i];
}

// ---------------------------------------------------------------------------
// Multiply-accumulate
// ---------------------------------------------------------------------------

/// SMLAL Vd.8H, Vn.8B, Vm.8B — widen-multiply the LOW 8 byte lanes and
/// accumulate into a 16-bit register (wraps mod 2^16 if the paper's
/// SMLAL:SADDW ratio were violated).
inline void smlal_s8(Ctx& ctx, int16x8& acc, const int8x16& a, const int8x16& b) {
  ctx.tally(Op::kSmlal8);
  for (int i = 0; i < 8; ++i) {
    const i32 prod = static_cast<i32>(a.v[i]) * static_cast<i32>(b.v[i]);
    acc.v[i] = static_cast<i16>(static_cast<u16>(acc.v[i]) + static_cast<u16>(prod));
  }
}

/// SMLAL2 Vd.8H, Vn.16B, Vm.16B — same, HIGH 8 byte lanes.
inline void smlal2_s8(Ctx& ctx, int16x8& acc, const int8x16& a, const int8x16& b) {
  ctx.tally(Op::kSmlal8);
  for (int i = 0; i < 8; ++i) {
    const i32 prod =
        static_cast<i32>(a.v[8 + i]) * static_cast<i32>(b.v[8 + i]);
    acc.v[i] = static_cast<i16>(static_cast<u16>(acc.v[i]) + static_cast<u16>(prod));
  }
}

/// SMLAL Vd.4S, Vn.4H, Vm.4H — 16-bit lanes into 32-bit accumulators (the
/// instruction ncnn's 8-bit scheme is built on).
inline void smlal_s16(Ctx& ctx, int32x4& acc, const int16x8& a, const int16x8& b) {
  ctx.tally(Op::kSmlal16);
  for (int i = 0; i < 4; ++i)
    acc.v[i] += static_cast<i32>(a.v[i]) * static_cast<i32>(b.v[i]);
}

/// SMLAL2 Vd.4S, Vn.8H, Vm.8H — high 4 halfword lanes.
inline void smlal2_s16(Ctx& ctx, int32x4& acc, const int16x8& a, const int16x8& b) {
  ctx.tally(Op::kSmlal16);
  for (int i = 0; i < 4; ++i)
    acc.v[i] += static_cast<i32>(a.v[4 + i]) * static_cast<i32>(b.v[4 + i]);
}

/// MLA Vd.16B, Vn.16B, Vm.16B — 16 byte-lane MACs, accumulating mod 2^8.
/// Twice the per-instruction MAC width of SMLAL on byte lanes (Sec. 3.4).
inline void mla_s8(Ctx& ctx, int8x16& acc, const int8x16& a, const int8x16& b) {
  ctx.tally(Op::kMla8);
  for (int i = 0; i < 16; ++i) {
    const u8 prod = static_cast<u8>(static_cast<u8>(a.v[i]) * static_cast<u8>(b.v[i]));
    acc.v[i] = static_cast<i8>(static_cast<u8>(static_cast<u8>(acc.v[i]) + prod));
  }
}

/// SDOT Vd.4S, Vn.16B, Vm.16B — ARMv8.2 dot-product extension: each 32-bit
/// lane accumulates the dot product of the corresponding four byte lanes.
/// Not available on the paper's ARMv8.1 target (Sec. 2.3); provided for
/// the v8.2 extension kernel (ext_sdot bench) that quantifies what the
/// paper's 2-8-bit schemes are competing against on newer cores.
inline void sdot_s8(Ctx& ctx, int32x4& acc, const int8x16& a, const int8x16& b) {
  ctx.tally(Op::kSdot);
  for (int i = 0; i < 4; ++i) {
    i32 dot = 0;
    for (int j = 0; j < 4; ++j)
      dot += static_cast<i32>(a.v[4 * i + j]) * static_cast<i32>(b.v[4 * i + j]);
    acc.v[i] += dot;
  }
}

// ---------------------------------------------------------------------------
// Widening adds (the SADDW family the instruction schemes flush through)
// ---------------------------------------------------------------------------

/// SADDW Vd.8H, Vn.8H, Vm.8B — accumulate sign-extended LOW byte lanes.
inline void saddw_s8(Ctx& ctx, int16x8& acc, const int8x16& v) {
  ctx.tally(Op::kSaddw8);
  for (int i = 0; i < 8; ++i)
    acc.v[i] = static_cast<i16>(acc.v[i] + static_cast<i16>(v.v[i]));
}

/// SADDW2 Vd.8H, Vn.8H, Vm.16B — HIGH byte lanes.
inline void saddw2_s8(Ctx& ctx, int16x8& acc, const int8x16& v) {
  ctx.tally(Op::kSaddw8);
  for (int i = 0; i < 8; ++i)
    acc.v[i] = static_cast<i16>(acc.v[i] + static_cast<i16>(v.v[8 + i]));
}

/// SADDW Vd.4S, Vn.4S, Vm.4H — accumulate sign-extended LOW halfword lanes.
inline void saddw_s16(Ctx& ctx, int32x4& acc, const int16x8& v) {
  ctx.tally(Op::kSaddw16);
  for (int i = 0; i < 4; ++i) acc.v[i] += static_cast<i32>(v.v[i]);
}

/// SADDW2 Vd.4S, Vn.4S, Vm.8H — HIGH halfword lanes.
inline void saddw2_s16(Ctx& ctx, int32x4& acc, const int16x8& v) {
  ctx.tally(Op::kSaddw16);
  for (int i = 0; i < 4; ++i) acc.v[i] += static_cast<i32>(v.v[4 + i]);
}

// ---------------------------------------------------------------------------
// Widening moves, zeroing, register moves
// ---------------------------------------------------------------------------

/// SSHLL Vd.8H, Vn.8B, #0 — sign-extend the low 8 bytes.
inline int16x8 sshll_s8(Ctx& ctx, const int8x16& v) {
  ctx.tally(Op::kSshll);
  int16x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = static_cast<i16>(v.v[i]);
  return r;
}

/// SSHLL2 Vd.8H, Vn.16B, #0 — sign-extend the high 8 bytes.
inline int16x8 sshll2_s8(Ctx& ctx, const int8x16& v) {
  ctx.tally(Op::kSshll);
  int16x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = static_cast<i16>(v.v[8 + i]);
  return r;
}

inline void movi_zero(Ctx& ctx, int8x16& v) {
  ctx.tally(Op::kMovi);
  v.v.fill(0);
}
inline void movi_zero(Ctx& ctx, int16x8& v) {
  ctx.tally(Op::kMovi);
  v.v.fill(0);
}
inline void movi_zero(Ctx& ctx, int32x4& v) {
  ctx.tally(Op::kMovi);
  v.v.fill(0);
}

/// Cost-only marker for the v-register <-> x-register spills of Alg. 1
/// (lines 10 and 13): the emulator has unlimited registers, so the data
/// movement is a no-op, but its cycle cost must be charged.
inline void mov_vx(Ctx& ctx, u64 count = 1) { ctx.tally(Op::kMovVX, count); }

// ---------------------------------------------------------------------------
// Bit-serial support (the TVM popcount baseline, Sec. 6 / Fig. 9)
// ---------------------------------------------------------------------------

inline uint8x16 and_u8(Ctx& ctx, const uint8x16& a, const uint8x16& b) {
  ctx.tally(Op::kAnd);
  uint8x16 r;
  for (int i = 0; i < 16; ++i) r.v[i] = static_cast<u8>(a.v[i] & b.v[i]);
  return r;
}

/// CNT Vd.16B, Vn.16B — per-byte population count.
inline uint8x16 cnt_u8(Ctx& ctx, const uint8x16& a) {
  ctx.tally(Op::kCnt);
  uint8x16 r;
  for (int i = 0; i < 16; ++i)
    r.v[i] = static_cast<u8>(__builtin_popcount(a.v[i]));
  return r;
}

/// UADALP Vd.8H, Vn.16B — pairwise widening add-accumulate.
inline void uadalp_u8(Ctx& ctx, uint16x8& acc, const uint8x16& v) {
  ctx.tally(Op::kUadalp);
  for (int i = 0; i < 8; ++i)
    acc.v[i] = static_cast<u16>(acc.v[i] + v.v[2 * i] + v.v[2 * i + 1]);
}

/// SADALP Vd.4S, Vn.8H (on unsigned counts the sign never matters here).
inline void sadalp_u16(Ctx& ctx, int32x4& acc, const uint16x8& v) {
  ctx.tally(Op::kSadalp);
  for (int i = 0; i < 4; ++i)
    acc.v[i] += static_cast<i32>(v.v[2 * i]) + static_cast<i32>(v.v[2 * i + 1]);
}

/// ADDV Sd, Vn.4S — across-vector sum.
inline i32 addv_s32(Ctx& ctx, const int32x4& v) {
  ctx.tally(Op::kAddv);
  return v.v[0] + v.v[1] + v.v[2] + v.v[3];
}

inline void add_s32(Ctx& ctx, int32x4& acc, const int32x4& v) {
  ctx.tally(Op::kAdd);
  for (int i = 0; i < 4; ++i) acc.v[i] += v.v[i];
}

}  // namespace lbc::armsim
