// Model of the 32-entry NEON vector register file for checked execution.
//
// The emulator itself has unlimited "registers" (they are host stack
// objects), which is exactly what lets a kernel silently exceed the real
// Cortex-A53 register budget or read a register it never wrote. The
// verifier keys each live vector register by the address of its host
// object — stable for the lifetime of one micro-kernel invocation — and
// tracks per-lane value intervals plus the accumulation count the
// instruction-scheme flush analysis (paper Sec. 3.3) is stated in.
#pragma once

#include <array>
#include <unordered_map>

#include "common/types.h"

namespace lbc::armsim {

/// Lane element type of a tracked vector register.
enum class VType : int { kS8, kS16, kS32, kU8, kU16 };

constexpr int vtype_lanes(VType t) {
  switch (t) {
    case VType::kS8:
    case VType::kU8:
      return 16;
    case VType::kS16:
    case VType::kU16:
      return 8;
    case VType::kS32:
      return 4;
  }
  return 0;
}

constexpr i64 vtype_min(VType t) {
  switch (t) {
    case VType::kS8: return -128;
    case VType::kS16: return -32768;
    case VType::kS32: return -2147483648LL;
    case VType::kU8:
    case VType::kU16:
      return 0;
  }
  return 0;
}

/// Short stable name ("s8", "u16", ...) for violation messages.
const char* vtype_name(VType t);

constexpr i64 vtype_max(VType t) {
  switch (t) {
    case VType::kS8: return 127;
    case VType::kS16: return 32767;
    case VType::kS32: return 2147483647LL;
    case VType::kU8: return 255;
    case VType::kU16: return 65535;
  }
  return 0;
}

/// Closed interval [lo, hi] of the values one lane may hold. Interval
/// arithmetic over the emulated trace proves overflow-safety without
/// depending on the particular input data of the run.
struct LaneInterval {
  i64 lo = 0;
  i64 hi = 0;
};

/// State of one live vector register.
struct VRegState {
  VType type = VType::kS8;
  bool initialized = false;
  /// MAC accumulations into this register since it was last zeroed — the
  /// quantity the SMLAL:SADDW / MLA:SADDW flush ratios bound.
  int accum = 0;
  /// Suppresses repeated overflow reports on the same register until it is
  /// re-zeroed (the first report already names the offending instruction).
  bool poisoned = false;
  u64 def_instr = 0;  ///< instruction index of the defining write
  std::array<LaneInterval, 16> lane{};

  int lanes() const { return vtype_lanes(type); }
};

/// The live-register set of one kernel scope. `live_count` counts distinct
/// vector registers defined in the scope; the real hardware has kArchRegs
/// of them, and Alg. 1 grants a few x-register spill slots beyond that.
class RegFile {
 public:
  static constexpr int kArchRegs = 32;

  /// (Re)define the register at `addr`. New addresses grow the live set.
  VRegState& def(const void* addr, VType t, u64 instr) {
    VRegState& st = regs_[addr];
    st.type = t;
    st.initialized = true;
    st.accum = 0;
    st.poisoned = false;
    st.def_instr = instr;
    if (live_count() > max_live_) max_live_ = live_count();
    return st;
  }

  VRegState* find(const void* addr) {
    auto it = regs_.find(addr);
    return it == regs_.end() ? nullptr : &it->second;
  }

  i64 live_count() const { return static_cast<i64>(regs_.size()); }
  i64 max_live() const { return max_live_; }

  void clear() {
    regs_.clear();
    max_live_ = 0;
  }

 private:
  std::unordered_map<const void*, VRegState> regs_;
  i64 max_live_ = 0;
};

}  // namespace lbc::armsim
