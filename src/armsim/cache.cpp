#include "armsim/cache.h"

namespace lbc::armsim {

bool CacheSim::Level::touch(u64 line) {
  const auto it = where.find(line);
  if (it == where.end()) return false;
  lru.splice(lru.begin(), lru, it->second);
  return true;
}

void CacheSim::Level::insert(u64 line) {
  if (static_cast<i64>(lru.size()) >= capacity) {
    where.erase(lru.back());
    lru.pop_back();
  }
  lru.push_front(line);
  where[line] = lru.begin();
}

MemLevel CacheSim::access_line(u64 line) {
  ++stats_.accesses;
  if (line == mru_line_) return MemLevel::kL1;  // streaming fast path
  mru_line_ = line;
  if (l1_.touch(line)) return MemLevel::kL1;
  ++stats_.l1_misses;
  if (l2_.touch(line)) {
    l1_.insert(line);
    return MemLevel::kL2;
  }
  ++stats_.l2_misses;
  l2_.insert(line);
  l1_.insert(line);
  return MemLevel::kDram;
}

MemLevel CacheSim::access(const void* p, u64 bytes) {
  const u64 addr = reinterpret_cast<u64>(p);
  const u64 first = addr / kLineBytes;
  const u64 last = (addr + (bytes ? bytes - 1 : 0)) / kLineBytes;
  MemLevel worst = MemLevel::kL1;
  for (u64 line = first; line <= last; ++line) {
    const MemLevel lv = access_line(line);
    if (static_cast<int>(lv) > static_cast<int>(worst)) worst = lv;
  }
  return worst;
}

}  // namespace lbc::armsim
