// Dynamic instruction counters for the emulated ARMv8.1 NEON ISA.
//
// Every emulated instruction tallies into a Ctx. The Cortex-A53 cost model
// (cost_model.h) converts the resulting instruction mix into modeled cycles;
// the mix itself is measured, not estimated, which is what makes the ARM
// evaluation figures reproducible in this simulator (see DESIGN.md Sec. 2).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "armsim/cache.h"
#include "common/types.h"

namespace lbc::armsim {

class Verifier;

namespace verifier_detail {
/// Out-of-line bridge so counters.h does not need verifier.h (which
/// includes this header back). Defined in verifier.cpp.
void check_mem(Verifier& v, const void* p, u64 bytes);
}  // namespace verifier_detail

/// Instruction classes. One entry per distinct (mnemonic, element width)
/// pair that the kernels use; widths matter because e.g. SMLAL on 8-bit
/// lanes retires 8 MACs while SMLAL on 16-bit lanes retires only 4.
enum class Op : int {
  kLd1,      ///< LD1 {v}, 128-bit contiguous vector load
  kLd1_64,   ///< LD1 {v.8b}, 64-bit vector load
  kLd1x4,    ///< LD1 {v0-v3}, 64-byte contiguous 4-register load
  kLd4r,     ///< LD4R: load 4 elements, replicate each across a register
  kSt1,      ///< ST1, 128-bit vector store
  kSmlal8,   ///< SMLAL/SMLAL2 on 8-bit lanes (8 MACs -> 16-bit acc)
  kSmlal16,  ///< SMLAL/SMLAL2 on 16-bit lanes (4 MACs -> 32-bit acc)
  kMla8,     ///< MLA .16B (16 MACs -> 8-bit acc)
  kSdot,     ///< SDOT .4S (ARMv8.2 extension: 16 MACs -> 32-bit acc)
  kTbl,      ///< TBL/TBX .16B (16 product lookups from a 16-entry table)
  kSaddw8,   ///< SADDW/SADDW2 widening 8 -> 16 bit
  kSaddw16,  ///< SADDW/SADDW2 widening 16 -> 32 bit
  kSshll,    ///< SSHLL/SSHLL2 sign-extend 8 -> 16 bit
  kMovi,     ///< MOVI: zero a vector register
  kMovVX,    ///< MOV between vector and general-purpose registers (spills)
  kDup,      ///< DUP: broadcast one element
  kAnd,      ///< AND .16B
  kCnt,      ///< CNT .16B (per-byte popcount)
  kUadalp,   ///< UADALP: pairwise widening add-accumulate (u8 -> u16)
  kSadalp,   ///< SADALP: pairwise widening add-accumulate (s16 -> s32)
  kAddv,     ///< ADDV: across-vector reduction
  kAdd,      ///< ADD vector integer add
  kShift,    ///< SHL/USHR/SRI family (bit packing)
  kScalar,   ///< general-purpose scalar ALU op (address math, masks)
  kLoop,     ///< loop control (compare + branch + induction update)
  kL1Miss,   ///< stall: line served from L2 (from the cache model)
  kL2Miss,   ///< stall: line served from DRAM
  kCount_
};

constexpr size_t kNumOps = static_cast<size_t>(Op::kCount_);

std::string_view op_name(Op op);

/// Whether the op issues on the load/store pipe (true) or the NEON ALU
/// pipe (false). kScalar/kLoop issue on the scalar pipe (handled apart).
bool is_mem_op(Op op);
bool is_scalar_op(Op op);
/// Cache-miss stall cycles: serial on the in-order A53, charged outside
/// the dual-issue overlap.
bool is_stall_op(Op op);

struct Counters {
  std::array<u64, kNumOps> n{};

  u64& operator[](Op op) { return n[static_cast<size_t>(op)]; }
  u64 operator[](Op op) const { return n[static_cast<size_t>(op)]; }

  void merge(const Counters& o) {
    for (size_t i = 0; i < kNumOps; ++i) n[i] += o.n[i];
  }
  u64 total() const {
    u64 t = 0;
    for (u64 v : n) t += v;
    return t;
  }
  /// Total vector loads (Eq. 1/3 "LD") and MAC-class arithmetic (Eq. 2/4
  /// "CAL"), for the re-designed-GEMM ablation.
  u64 loads() const;
  u64 macs_instrs() const;  ///< SMLAL + MLA + SDOT instruction count
};

/// Tally context threaded through every emulated instruction. Each Ctx
/// carries its own cache model (one per core: the Pi 3B's A53s have
/// private L1s; the shared L2 is approximated per-core).
class Ctx {
 public:
  Counters counts;

  void tally(Op op, u64 k = 1) { counts[op] += k; }

  /// Route a memory access through the cache model (called by every
  /// emulated load/store with the real buffer address).
  void mem(const void* p, u64 bytes) {
    if (verifier != nullptr) verifier_detail::check_mem(*verifier, p, bytes);
    if (!model_cache) return;
    switch (cache.access(p, bytes)) {
      case MemLevel::kL1: break;
      case MemLevel::kL2: tally(Op::kL1Miss); break;
      case MemLevel::kDram:
        tally(Op::kL1Miss);
        tally(Op::kL2Miss);
        break;
    }
  }

  /// Touch a buffer range line by line (bulk passes such as im2col or the
  /// winograd transform scatter, whose issue cost is tallied separately).
  void mem_range(const void* p, u64 bytes) {
    if (!model_cache) return;
    const char* c = static_cast<const char*>(p);
    for (u64 off = 0; off < bytes; off += CacheSim::kLineBytes)
      mem(c + off, 1);
  }

  bool model_cache = true;
  CacheSim cache;

  /// Checked-execution hook (verifier.h). Null by default: plain runs pay
  /// one untaken branch per memory access and no counter changes.
  Verifier* verifier = nullptr;
};

}  // namespace lbc::armsim
