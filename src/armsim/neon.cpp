#include "armsim/neon.h"

// All instruction emulations are inline in the header (they sit on the
// hottest path of the emulator); this TU just forces a standalone compile.
namespace lbc::armsim {
static_assert(sizeof(int8x16) == 16);
static_assert(sizeof(int16x8) == 16);
static_assert(sizeof(int32x4) == 16);
}  // namespace lbc::armsim
