// Cache-hierarchy model for the emulated Cortex-A53 (Raspberry Pi 3B):
// 32 KB L1D and 512 KB shared L2, 64-byte lines.
//
// Both levels are modeled FULLY ASSOCIATIVE with exact LRU. This is a
// deliberate approximation with one decisive property: hit/miss behaviour
// depends only on the *recency order of distinct line identities*, never on
// absolute addresses — so the model is invariant under renaming of host
// heap addresses, and simulation results are bit-reproducible across runs
// even though the emulator feeds it real pointers. (A set-associative model
// would make miss counts depend on where malloc happened to place buffers.)
// Capacity misses — the effect that matters for the kernels here, e.g.
// winograd's 16 scattered matrices — are captured exactly; conflict misses
// are not, which makes the model slightly optimistic.
//
// A one-line MRU filter keeps the common streaming case (four 16-byte
// loads per line) off the LRU bookkeeping path.
#pragma once

#include <list>
#include <unordered_map>

#include "common/types.h"

namespace lbc::armsim {

enum class MemLevel { kL1, kL2, kDram };

class CacheSim {
 public:
  static constexpr int kLineBytes = 64;
  static constexpr i64 kL1Lines = 32 * 1024 / kLineBytes;    // 512
  static constexpr i64 kL2Lines = 512 * 1024 / kLineBytes;   // 8192

  /// Where the access hit. Spans crossing line boundaries report the worst
  /// level among the touched lines.
  MemLevel access(const void* p, u64 bytes);

  struct Stats {
    u64 accesses = 0;
    u64 l1_misses = 0;  ///< served by L2
    u64 l2_misses = 0;  ///< served by DRAM
  };
  const Stats& stats() const { return stats_; }

 private:
  MemLevel access_line(u64 line);

  struct Level {
    i64 capacity = 0;
    std::list<u64> lru;  // front = most recent
    std::unordered_map<u64, std::list<u64>::iterator> where;

    bool touch(u64 line);   // true if present (moves to front)
    void insert(u64 line);  // inserts at front, evicting LRU if full
  };

  Level l1_{kL1Lines, {}, {}};
  Level l2_{kL2Lines, {}, {}};
  u64 mru_line_ = ~u64{0};
  Stats stats_;
};

}  // namespace lbc::armsim
