// Cortex-A53 (Raspberry Pi 3B) timing model over measured instruction mixes.
//
// The A53 is a dual-issue in-order core with one load/store pipe and one
// 64-bit NEON pipe. The model charges each instruction class a throughput
// cost in cycles and combines the pipes in one of two ways:
//
//  * interleaved kernels (the paper interleaves {LD1, LD4R} with SMLAL for
//    "data prefetching", Sec. 3.3): the pipes overlap, so
//        neon_cycles = max(mem, alu) + kappa * min(mem, alu)
//    with kappa modeling imperfect dual-issue;
//  * non-interleaved kernels (the traditional-GEMM ablation): mem + alu.
//
// Scalar/loop overhead dual-issues with NEON at a fixed discount.
//
// Per-class costs follow the ARM Cortex-A53 software optimization picture:
// 128-bit loads and stores cost 2 cycles of the load pipe, LD4R costs 4,
// and the paper's stated relation "MLA exhibits twice the computation
// throughput of SMLAL" (Sec. 3.4) fixes MLA.16B = SMLAL.8H = 1 cycle
// (16 vs 8 MACs per cycle). These constants are *calibration inputs*; the
// instruction counts they multiply are measured from the emulated kernels.
#pragma once

#include "armsim/counters.h"

namespace lbc::armsim {

struct CostModel {
  double cycles[kNumOps] = {};
  double kappa = 0.35;        ///< dual-issue imperfection on overlapped pipes
  double scalar_issue = 0.5;  ///< fraction of scalar cycles not hidden
  double freq_hz = 1.2e9;     ///< Pi 3B A53 clock

  static CostModel cortex_a53();

  struct Breakdown {
    double mem_cycles = 0;
    double alu_cycles = 0;
    double scalar_cycles = 0;
    double stall_cycles = 0;  ///< cache-miss stalls (serial on in-order A53)
    double total_cycles = 0;
  };

  Breakdown breakdown(const Counters& c, bool interleaved) const;
  double cycles_for(const Counters& c, bool interleaved) const {
    return breakdown(c, interleaved).total_cycles;
  }
  double seconds_for(const Counters& c, bool interleaved) const {
    return cycles_for(c, interleaved) / freq_hz;
  }
};

}  // namespace lbc::armsim
