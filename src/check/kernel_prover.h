// Symbolic overflow prover for every kernel scheme (paper Sec. 3.3, made
// static).
//
// PR 4's verifier checks the flush-interval overflow argument *dynamically*:
// it replays one concrete emulated-NEON trace through interval analysis and
// rejects the run if a 16-bit lane could have wrapped. That proves the
// kernel correct for the operands it saw. This module proves the argument
// for ALL inputs, ahead of execution, from the scheme's declared facts
// alone: operand ranges (the adjusted range [-(2^(b-1)-1), 2^(b-1)-1]),
// flush cadences (KernelSpec / schemes.h on ARM, kLutFlushInterval on
// x86), and the reduction depth. Each fact becomes a named *obligation* —
// a closed-form inequality with the numbers substituted — and a proof is
// the conjunction of its obligations.
//
// Coverage (the first static verification the native schemes have had —
// their saturation arguments previously lived in code comments):
//  * ARM SMLAL (4-8 bit): declared flush covers the kernel's unroll factor
//    AND flush * qmax^2 <= 32767 (re-deriving the dynamic result of PR 4
//    symbolically), plus i32 depth headroom.
//  * ARM MLA (2-3 bit): both accumulation levels — 8-bit lane headroom per
//    first-level flush, 16-bit headroom across kSecondLevelRounds rounds.
//  * ARM SDOT / ncnn-style / traditional: direct-i32 (or single-flush)
//    variants of the same argument.
//  * ARM TBL (2-3 bit): every product-table entry fits the signed-byte TBL
//    lane, every index stays inside the 16-entry window, i16 lanes hold
//    through the declared flush, and the shipping table builder produces
//    exactly the decoded pair/generic products (checked exhaustively).
//  * AVX2 LUT (2-4 bit): products fit the signed-byte pshufb table, i16
//    lanes cannot overflow before the 256-step flush, every table index
//    stays in [0, 15], and the N%32 zero-pad tail always indexes the w*0
//    entry (checked against the real native_product_lut table).
//  * AVX2 maddubs dot (5-8 bit): the sign-trick i16 pair sum cannot
//    saturate given the adjusted -127..127 range (2*127*127 < 2^15 — the
//    -128 exclusion), plus i32 depth headroom.
//  * Portable scalar fallbacks: direct-i32 accumulation depth headroom.
//
// Failed proofs reject the configuration at plan time
// (core::plan_arm_conv / plan_native_conv) with kInvariantViolation and
// the failed obligation named; check::prove_all_schemes() sweeps the full
// scheme x bits x blocking grid as a CI gate beside verify_all_kernels().
#pragma once

#include <string>
#include <vector>

#include "armkern/gemm_lowbit.h"
#include "common/status.h"
#include "common/types.h"

namespace lbc::check {

/// Accumulation scheme under proof. The ARM entries are the paper's
/// instruction schemes (Sec. 3.3); the native entries are the x86 backend's
/// (hal/native_gemm.h); kNativeScalar covers both portable fallbacks.
enum class ProofScheme {
  kArmSmlal,
  kArmMla,
  kArmSdot,
  kArmNcnn,
  kArmTraditional,
  kArmTbl,
  kNativeLut,
  kNativeDot,
  kNativeScalar,
};

const char* proof_scheme_name(ProofScheme s);

/// Declared facts the proof runs on. shipping_model() fills this from the
/// constants the kernels actually use; mutation tests corrupt individual
/// fields and assert the named obligation fails.
struct SchemeModel {
  ProofScheme scheme = ProofScheme::kArmSmlal;
  int bits = 8;
  /// Declared operand magnitude bounds (|a| <= a_max_abs etc.). Shipping
  /// models use the adjusted range qmax_for_bits(bits).
  i32 a_max_abs = 0;
  i32 b_max_abs = 0;
  /// Declared 16-bit-lane flush interval (SMLAL / traditional / LUT).
  int acc16_flush = 0;
  /// Declared 8-bit-lane flush interval (MLA first level).
  int acc8_flush = 0;
  /// Declared first-level rounds between 16->32-bit flushes (MLA).
  int second_level_rounds = 0;
  /// Total reduction depth (GEMM K) the proof must cover.
  i64 depth = 0;
  /// Native LUT: the N%32 tail is staged through a zero-padded block, so
  /// the pad-entry obligation is in force.
  bool pad_zero_tail = false;
  /// ARM TBL: ternary pair mode (two depth positions per index) vs the
  /// generic one-value-per-index form. Changes the table-entry bound.
  bool tbl_pair = false;
  /// ARM TBL: the table builder under proof. shipping_model points it at
  /// armkern::tbl_build_table so the exhaustive table-entries obligation
  /// checks the REAL build path; mutation tests substitute a corrupted one.
  void (*tbl_build)(int bits, bool ternary_pairs, i8 b0, i8 b1,
                    i8 out[16]) = nullptr;
};

/// One closed-form proof obligation: a named inequality with the model's
/// numbers substituted into `statement`, and whether it held.
struct Obligation {
  std::string name;       ///< stable id, e.g. "smlal.i16-lane-headroom"
  std::string statement;  ///< the inequality, numbers substituted
  bool proved = false;
};

struct ProofResult {
  ProofScheme scheme = ProofScheme::kArmSmlal;
  int bits = 0;
  std::vector<Obligation> obligations;

  bool proved() const;
  /// First failed obligation, or nullptr when the proof holds.
  const Obligation* first_failed() const;
  /// OK when proved; kInvariantViolation naming the failed obligation
  /// otherwise — the exact Status plan compilation surfaces.
  Status to_status() const;
};

/// The shipping declaration for (scheme, bits) at reduction depth `depth`:
/// adjusted operand ranges and the flush constants the kernels compile
/// with (schemes.h / hal::kLutFlushInterval).
SchemeModel shipping_model(ProofScheme scheme, int bits, i64 depth);

/// Discharge every obligation of `m`. All obligations are evaluated (no
/// short-circuit) so a report always lists the full conjunction.
ProofResult prove(const SchemeModel& m);

/// Plan-time gate for the emulated ARM path: prove the scheme the GEMM
/// rung of `kernel` dispatches to at `bits`, at reduction depth `depth`.
/// OK for non-GEMM rungs (their invariants stay under the PR-4 dynamic
/// verifier). kInvariantViolation with the obligation named on failure.
Status prove_arm_kernel(armkern::ArmKernel kernel, int bits, i64 depth);

/// Plan-time gate for the native path: proves the scheme
/// native_scheme_for(bits) selects AND the portable scalar fallback (the
/// dispatch layer may route to either at execute time).
Status prove_native_scheme(int bits, i64 depth);

// ---- CI sweep ------------------------------------------------------------

struct ProofSweepEntry {
  std::string config;  ///< "smlal b4 k=4608 mc=128 kc=256 nc=64"
  bool proved = false;
  std::string detail;  ///< failed obligation (empty when proved)
};

/// prove_all_schemes() report — same shape as KernelVerifyReport so CI
/// treats both gates identically.
struct ProofSweepReport {
  std::vector<ProofSweepEntry> entries;
  int obligations = 0;  ///< total obligations discharged
  int failures = 0;

  bool ok() const { return failures == 0; }
  std::string failure_summary() const;
};

/// Sweep the full shipping grid: every scheme x its bit widths x a
/// representative set of GEMM depths, with the blocking each depth's shape
/// would actually run under (clamp_blocking on ARM, default native
/// blocking on x86) recorded in the config string. The static twin of
/// verify_all_kernels().
ProofSweepReport prove_all_schemes();

/// Number of entries prove_all_schemes() emits, derived from the registered
/// scheme x bit-width x shape grid — tests compare the report size against
/// this instead of a hardcoded literal, so registering a new scheme cannot
/// silently shrink the sweep.
int proof_sweep_expected_entries();

}  // namespace lbc::check
