#include "check/plan_audit.h"

#include <sstream>

namespace lbc::check {
namespace {

void add(AuditReport& rep, const char* invariant, const std::string& detail) {
  rep.findings.push_back(AuditFinding{invariant, detail});
}

bool ranges_overlap(i64 a_off, i64 a_bytes, i64 b_off, i64 b_bytes) {
  return a_off < b_off + b_bytes && b_off < a_off + a_bytes;
}

}  // namespace

Status AuditReport::to_status() const {
  if (ok()) return Status();
  std::ostringstream os;
  os << "plan audit failed: invariant '" << findings.front().invariant
     << "' — " << findings.front().detail;
  if (findings.size() > 1)
    os << " (+" << findings.size() - 1 << " more findings)";
  return Status::invariant_violation(os.str());
}

std::string AuditReport::summary() const {
  if (ok()) return "plan audit clean";
  std::ostringstream os;
  os << findings.size() << " audit findings";
  for (const AuditFinding& f : findings)
    os << "\n  " << f.invariant << ": " << f.detail;
  return os.str();
}

AuditReport audit_plan(const PlanAuditInput& in) {
  AuditReport rep;

  // Slot containment + pairwise liveness/extent overlap. The planner's
  // first-fit packing is exactly the claim "lifetimes overlap => byte
  // ranges disjoint"; re-check it from the placed result.
  for (const SlotInterval& s : in.slots) {
    if (s.off < 0 || s.bytes <= 0 || s.off + s.bytes > in.activation_bytes) {
      std::ostringstream os;
      os << "node " << s.node << " slot [" << s.off << ", "
         << s.off + s.bytes << ") outside arena of " << in.activation_bytes
         << " bytes";
      add(rep, "audit.slot-in-arena", os.str());
    }
    if (s.def > s.last) {
      std::ostringstream os;
      os << "node " << s.node << " liveness interval [" << s.def << ", "
         << s.last << "] is inverted";
      add(rep, "audit.slot-in-arena", os.str());
    }
  }
  for (size_t i = 0; i < in.slots.size(); ++i)
    for (size_t j = i + 1; j < in.slots.size(); ++j) {
      const SlotInterval& a = in.slots[i];
      const SlotInterval& b = in.slots[j];
      const bool live_together = a.def <= b.last && b.def <= a.last;
      if (live_together && ranges_overlap(a.off, a.bytes, b.off, b.bytes)) {
        std::ostringstream os;
        os << "nodes " << a.node << " and " << b.node
           << " are live together (defs " << a.def << "/" << b.def
           << ", lasts " << a.last << "/" << b.last
           << ") but slots overlap: [" << a.off << ", " << a.off + a.bytes
           << ") vs [" << b.off << ", " << b.off + b.bytes << ")";
        add(rep, "audit.slot-overlap", os.str());
      }
    }

  // Fused epilogues write only their declared arena slot.
  for (const EpilogueWrite& e : in.epilogues) {
    if (e.write_off < e.slot_off ||
        e.write_off + e.write_bytes > e.slot_off + e.slot_bytes) {
      std::ostringstream os;
      os << "node " << e.node << " epilogue writes [" << e.write_off << ", "
         << e.write_off + e.write_bytes << ") outside its slot ["
         << e.slot_off << ", " << e.slot_off + e.slot_bytes << ")";
      add(rep, "audit.epilogue-containment", os.str());
    }
  }

  // Prepacked weight accounting matches the backing allocations. An
  // under-declared region means the executing kernel reads past what the
  // plan claims to own; an over-declaration corrupts registry budgeting.
  for (const PackedRegion& p : in.packed) {
    if (p.declared_bytes != p.backing_bytes) {
      std::ostringstream os;
      os << "node " << p.node << " declares " << p.declared_bytes
         << " packed-weight bytes but the backing buffers hold "
         << p.backing_bytes;
      add(rep, "audit.packed-weight-bounds", os.str());
    }
  }

  // Resolved blockings (TuningCache rows or fresh searches) must be fixed
  // points of clamp_blocking for their GEMM view — i.e. already inside the
  // micro-tile grid and problem bounds a corrupt cache row could escape.
  for (const BlockingRecord& b : in.blockings) {
    const armkern::GemmBlocking c =
        armkern::clamp_blocking(b.blocking, b.m, b.n, b.k, b.sdot);
    if (!(c == b.blocking)) {
      std::ostringstream os;
      os << "node " << b.node << " blocking {" << b.blocking.mc << ", "
         << b.blocking.kc << ", " << b.blocking.nc
         << "} escapes clamp bounds for m=" << b.m << " n=" << b.n
         << " k=" << b.k << " (clamps to {" << c.mc << ", " << c.kc << ", "
         << c.nc << "})";
      add(rep, "audit.blocking-clamped", os.str());
    }
  }

  return rep;
}

}  // namespace lbc::check
