// Post-compile auditor for compiled plans (ConvPlan / GraphPlan).
//
// GraphPlan::compile performs liveness analysis, first-fit arena packing,
// epilogue fusion, and TuningCache blocking resolution — four places where
// a planning bug silently corrupts activations at execute time (an
// overlapping slot assignment reads a clobbered tensor; a fused epilogue
// writing past its slot tramples a neighbour). The auditor re-checks the
// *output* of planning against four invariants, from plain data the
// planner hands over, so a mutation in any of the four shows up as a named
// rejection instead of wrong inference results:
//
//   audit.slot-overlap          simultaneously-live slots occupy disjoint
//                               byte ranges of the activation arena
//   audit.slot-in-arena         every slot lies inside [0, arena bytes)
//   audit.epilogue-containment  fused writeback extents stay inside the
//                               declared destination slot
//   audit.packed-weight-bounds  declared prepacked-weight bytes match the
//                               backing allocations exactly
//   audit.blocking-clamped      every resolved blocking is a fixed point
//                               of clamp_blocking for its GEMM view (i.e.
//                               TuningCache rows respect the clamp bounds)
//
// Wired into GraphPlan::compile behind the opt-in GraphPlanOptions::audit
// flag; the mutation suite (tests/test_plan_audit.cpp) corrupts each
// invariant on hand-built inputs and asserts the named finding.
#pragma once

#include <string>
#include <vector>

#include "armkern/blocking.h"
#include "common/status.h"
#include "common/types.h"

namespace lbc::check {

/// One activation-arena slot with its liveness interval: written first at
/// node `def`, read last at node `last` (inclusive, in execution order).
struct SlotInterval {
  int node = 0;  ///< node the slot belongs to (for findings)
  i64 off = 0;
  i64 bytes = 0;
  int def = 0;
  int last = 0;
};

/// One fused-epilogue writeback: the byte extent the epilogue can touch
/// vs the arena slot it is declared to own.
struct EpilogueWrite {
  int node = 0;
  i64 slot_off = 0;
  i64 slot_bytes = 0;
  i64 write_off = 0;  ///< first byte the epilogue writes
  i64 write_bytes = 0;
};

/// Declared vs actual backing size of one prepacked weight buffer.
struct PackedRegion {
  int node = 0;
  i64 declared_bytes = 0;  ///< plan's packed_weight_bytes accounting
  i64 backing_bytes = 0;   ///< sum of the actual buffer allocations
};

/// One TuningCache-resolved (or searched) blocking with its GEMM view.
struct BlockingRecord {
  int node = 0;
  armkern::GemmBlocking blocking;
  i64 m = 0, n = 0, k = 0;
  bool sdot = false;
};

/// Everything the auditor sees — plain data, so GraphPlan::compile fills
/// it from real plan state and mutation tests corrupt it field by field.
struct PlanAuditInput {
  i64 activation_bytes = 0;  ///< arena extent the slots must fit in
  std::vector<SlotInterval> slots;
  std::vector<EpilogueWrite> epilogues;
  std::vector<PackedRegion> packed;
  std::vector<BlockingRecord> blockings;
};

struct AuditFinding {
  std::string invariant;  ///< "audit.slot-overlap", ...
  std::string detail;
};

struct AuditReport {
  std::vector<AuditFinding> findings;

  bool ok() const { return findings.empty(); }
  /// OK when clean; kInvariantViolation naming the first finding's
  /// invariant otherwise — the Status GraphPlan::compile surfaces when
  /// GraphPlanOptions::audit is set.
  Status to_status() const;
  std::string summary() const;
};

/// Check every invariant over `in`. All findings are collected (no
/// short-circuit) so one audit lists every violated invariant.
AuditReport audit_plan(const PlanAuditInput& in);

}  // namespace lbc::check
