#include "check/kernel_prover.h"

#include <limits>
#include <sstream>

#include "armkern/blocking.h"
#include "armkern/schemes.h"
#include "hal/native_gemm.h"

namespace lbc::check {
namespace {

constexpr i64 kI16Max = 32767;
constexpr i64 kI8Max = 127;
constexpr i64 kI32Max = std::numeric_limits<i32>::max();

/// Largest single-product magnitude under the declared operand ranges —
/// the interval-arithmetic step bound every headroom obligation scales.
i64 product_bound(const SchemeModel& m) {
  return static_cast<i64>(m.a_max_abs) * static_cast<i64>(m.b_max_abs);
}

void add(ProofResult& r, const char* name, bool holds,
         const std::string& statement) {
  r.obligations.push_back(Obligation{name, statement, holds});
}

std::string ineq(i64 lhs, i64 rhs, const char* lhs_expr, const char* bound) {
  std::ostringstream os;
  os << lhs_expr << " = " << lhs << " <= " << rhs << " (" << bound << ")";
  return os.str();
}

/// Obligation: the declared operand range is inside the adjusted range
/// [-qmax, qmax] of the bit width — the paper's exclusion of -2^(b-1),
/// which every headroom bound below presumes.
void prove_operand_range(ProofResult& r, const SchemeModel& m,
                         const char* name) {
  const i32 q = qmax_for_bits(m.bits);
  std::ostringstream os;
  os << "|a| <= " << m.a_max_abs << ", |w| <= " << m.b_max_abs
     << " within adjusted range +-" << q;
  add(r, name, m.a_max_abs <= q && m.b_max_abs <= q && m.a_max_abs >= 0 &&
                   m.b_max_abs >= 0,
      os.str());
}

/// Obligation: `depth` products of magnitude <= P accumulate into one
/// 32-bit lane without overflow — the final accumulator is always i32, so
/// every scheme carries this bound.
void prove_i32_depth(ProofResult& r, const SchemeModel& m, const char* name) {
  const i64 p = product_bound(m);
  add(r, name, m.depth >= 0 && m.depth * p <= kI32Max,
      ineq(m.depth * p, kI32Max, "K * amax * wmax", "i32 headroom"));
}

void prove_smlal(ProofResult& r, const SchemeModel& m) {
  const i64 p = product_bound(m);
  const int unroll = armkern::smlal_flush_interval(m.bits);
  // The headroom bound below only covers accumulation runs of length
  // <= acc16_flush; the declaration must therefore cover the kernel's
  // actual unroll factor or the proof says nothing about the kernel.
  add(r, "smlal.flush-covers-unroll", m.acc16_flush >= unroll,
      ineq(unroll, m.acc16_flush, "kernel unroll", "declared flush"));
  add(r, "smlal.i16-lane-headroom",
      m.acc16_flush > 0 && m.acc16_flush * p <= kI16Max,
      ineq(m.acc16_flush * p, kI16Max, "flush * amax * wmax",
           "i16 headroom"));
  prove_operand_range(r, m, "smlal.operand-range-adjusted");
  prove_i32_depth(r, m, "smlal.i32-depth-headroom");
}

void prove_mla(ProofResult& r, const SchemeModel& m) {
  const i64 p = product_bound(m);
  const int unroll = armkern::mla_flush_interval(m.bits);
  add(r, "mla.flush-covers-unroll", m.acc8_flush >= unroll,
      ineq(unroll, m.acc8_flush, "kernel unroll", "declared flush"));
  add(r, "mla.i8-lane-headroom",
      m.acc8_flush > 0 && m.acc8_flush * p <= kI8Max,
      ineq(m.acc8_flush * p, kI8Max, "flush8 * amax * wmax", "i8 headroom"));
  // Second level: each 8->16 flush deposits at most flush8 * P into a
  // 16-bit lane; the 16->32 flush must come before those deposits overflow.
  add(r, "mla.rounds-cover-kernel",
      m.second_level_rounds >= armkern::kSecondLevelRounds,
      ineq(armkern::kSecondLevelRounds, m.second_level_rounds,
           "kernel 16->32 cadence", "declared rounds"));
  add(r, "mla.i16-second-level-headroom",
      m.second_level_rounds > 0 &&
          static_cast<i64>(m.second_level_rounds) * m.acc8_flush * p <=
              kI16Max,
      ineq(static_cast<i64>(m.second_level_rounds) * m.acc8_flush * p,
           kI16Max, "rounds * flush8 * amax * wmax", "i16 headroom"));
  prove_operand_range(r, m, "mla.operand-range-adjusted");
  prove_i32_depth(r, m, "mla.i32-depth-headroom");
}

void prove_sdot(ProofResult& r, const SchemeModel& m) {
  // SDOT accumulates four products per step straight into i32 lanes — no
  // intermediate narrow lane, so depth headroom is the whole argument.
  prove_operand_range(r, m, "sdot.operand-range-adjusted");
  prove_i32_depth(r, m, "sdot.i32-depth-headroom");
}

void prove_ncnn(ProofResult& r, const SchemeModel& m) {
  // ncnn scheme widens both operands (SSHLL) and SMLALs into 32-bit lanes
  // directly; like SDOT, only the depth bound is at stake.
  prove_operand_range(r, m, "ncnn.operand-range-adjusted");
  prove_i32_depth(r, m, "ncnn.i32-depth-headroom");
}

void prove_traditional(ProofResult& r, const SchemeModel& m) {
  // gemm_traditional accumulates in 16-bit lanes at a single-level flush:
  // mla_flush * 4 for 2-3 bit, the SMLAL interval otherwise.
  const i64 p = product_bound(m);
  const int unroll = m.bits <= 3 ? armkern::mla_flush_interval(m.bits) * 4
                                 : armkern::smlal_flush_interval(m.bits);
  add(r, "traditional.flush-covers-unroll", m.acc16_flush >= unroll,
      ineq(unroll, m.acc16_flush, "kernel unroll", "declared flush"));
  add(r, "traditional.i16-lane-headroom",
      m.acc16_flush > 0 && m.acc16_flush * p <= kI16Max,
      ineq(m.acc16_flush * p, kI16Max, "flush * amax * wmax",
           "i16 headroom"));
  prove_operand_range(r, m, "traditional.operand-range-adjusted");
  prove_i32_depth(r, m, "traditional.i32-depth-headroom");
}

void prove_tbl(ProofResult& r, const SchemeModel& m) {
  const i32 q = qmax_for_bits(m.bits);
  // Largest |entry| a product table can hold: d0*b0 + d1*b1 over ternary
  // pairs (2*qmax), or one full product (qmax^2) in generic mode.
  const i64 entry =
      m.tbl_pair ? 2 * static_cast<i64>(m.b_max_abs)
                 : static_cast<i64>(m.a_max_abs) * m.b_max_abs;
  add(r, "tbl.entry-fits-i8", entry <= kI8Max,
      ineq(entry, kI8Max,
           m.tbl_pair ? "2 * bmax (pair d0*b0 + d1*b1)" : "amax * bmax",
           "i8 table entry"));
  // Every encoded index must land inside the single-register TBL's
  // 16-entry window: pair classes top out at (1+1)*4 + (1+1) = 10, the
  // generic form at value + qmax = 2*qmax.
  const i64 max_idx = m.tbl_pair ? armkern::tbl_pair_index(1, 1) : 2 * q;
  add(r, "tbl.index-in-table", max_idx <= 15,
      ineq(max_idx, 15, m.tbl_pair ? "pair index (1,1)" : "qmax + qmax",
           "16-entry table"));
  // Two-level accumulation: ADD.16B folds one table entry per group step
  // into a byte lane, so the declared i8 flush interval must both fit the
  // lane (flush * entry <= 127) and cover the kernel's real cadence
  // (tbl_flush_interval for this bits/pair mode).
  add(r, "tbl.i8-lane-headroom",
      m.acc8_flush > 0 && m.acc8_flush * entry <= kI8Max,
      ineq(m.acc8_flush * entry, kI8Max, "flush * entry bound",
           "i8 headroom"));
  const int cadence = armkern::tbl_flush_interval(m.bits, m.tbl_pair);
  add(r, "tbl.flush-covers-kernel", m.acc8_flush >= cadence,
      ineq(cadence, m.acc8_flush, "kernel flush cadence", "declared flush"));
  // The SADDW path has no range clamp after the table lookup, so the
  // headroom bounds above only hold if the builder NEVER emits an entry
  // outside them — including 0 at every invalid/neutral index, which is
  // what makes padded rows, padded columns, and odd-K tails contribute
  // nothing. Check the real shipping builder exhaustively: all (b0, b1)
  // broadcast operands in range, all 16 indices.
  if (m.tbl_build != nullptr) {
    bool exact = true;
    std::ostringstream detail;
    for (i32 b0 = -q; b0 <= q && exact; ++b0)
      for (i32 b1 = -q; b1 <= q && exact; ++b1) {
        i8 table[16];
        m.tbl_build(m.bits, m.tbl_pair, static_cast<i8>(b0),
                    static_cast<i8>(b1), table);
        for (int idx = 0; idx < 16 && exact; ++idx) {
          i32 want = 0;
          if (m.tbl_pair) {
            const i32 d0 = idx / 4 - 1, d1 = idx % 4 - 1;
            if (d0 <= 1 && d1 <= 1 && idx % 4 != 3) want = d0 * b0 + d1 * b1;
          } else if (idx <= 2 * q) {
            want = (idx - q) * b0;
          }
          if (table[idx] != want) {
            exact = false;
            detail << "table(" << b0 << ", " << b1 << ")[" << idx
                   << "] = " << static_cast<i32>(table[idx]) << " != " << want;
          }
        }
      }
    add(r, "tbl.table-entries-exact", exact,
        exact ? std::string("builder matches decoded ") +
                    (m.tbl_pair ? "pair" : "generic") +
                    " products for all operands and indices"
              : detail.str());
  }
  prove_operand_range(r, m, "tbl.operand-range-adjusted");
  prove_i32_depth(r, m, "tbl.i32-depth-headroom");
}

void prove_lut(ProofResult& r, const SchemeModel& m) {
  const i32 q = qmax_for_bits(m.bits);
  const i64 p = product_bound(m);
  // Every (w, a) product must fit the signed-byte pshufb table entry.
  add(r, "lut.entry-fits-i8", p <= kI8Max,
      ineq(p, kI8Max, "amax * wmax", "i8 table entry"));
  // Table index = value + qmax must stay inside the 16-entry pshufb row
  // for both operands (a indexes within a row, w selects the row).
  add(r, "lut.index-in-table", 2 * q <= 15,
      ineq(2 * q, 15, "qmax + qmax", "16-entry table"));
  add(r, "lut.i16-lane-headroom",
      m.acc16_flush > 0 && m.acc16_flush * p <= kI16Max,
      ineq(m.acc16_flush * p, kI16Max, "flush * amax * wmax",
           "i16 headroom"));
  add(r, "lut.flush-covers-kernel", m.acc16_flush >= hal::kLutFlushInterval,
      ineq(hal::kLutFlushInterval, m.acc16_flush, "kernel flush cadence",
           "declared flush"));
  // The N%32 tail stages zero activation bytes through the full-width
  // kernel; a zero byte indexes column 0 + qmax — the w*0 entry — which
  // must be 0 in EVERY weight row of the real shipping table.
  if (m.pad_zero_tail) {
    const i8* lut = hal::native_product_lut(m.bits);
    bool zero_ok = m.a_max_abs <= q;  // pad index q only valid in-range
    for (i32 w = -q; w <= q && zero_ok; ++w)
      zero_ok = lut[static_cast<size_t>(w + q) * 16 + static_cast<size_t>(q)] == 0;
    std::ostringstream os;
    os << "table[w + " << q << "][0 + " << q << "] == w * 0 == 0 for all w in +-"
       << q;
    add(r, "lut.pad-zero-entry", zero_ok, os.str());
  }
  prove_operand_range(r, m, "lut.operand-range-adjusted");
  prove_i32_depth(r, m, "lut.i32-depth-headroom");
}

void prove_dot(ProofResult& r, const SchemeModel& m) {
  const i64 p = product_bound(m);
  // maddubs forms |a|*sign-adjusted-b pair sums in i16 WITH SATURATION;
  // the proof must rule saturation out, not merely wraparound. Two
  // adjacent products bound the pair sum — 2 * 127 * 127 = 32258 < 2^15
  // for the adjusted range, and exactly why -128 must stay excluded
  // (2 * 128 * 128 = 32768 saturates).
  add(r, "dot.pair-sum-no-saturate", 2 * p <= kI16Max,
      ineq(2 * p, kI16Max, "2 * amax * wmax", "i16 pair sum, no saturate"));
  // K zero-pads to 32 for the dot layout; pad lanes carry a = 0, so
  // |a| * anything contributes 0 regardless of the b byte.
  add(r, "dot.zero-pad-neutral", true,
      "pad lanes multiply |a| = 0: contribution is exactly 0");
  prove_operand_range(r, m, "dot.operand-range-adjusted");
  prove_i32_depth(r, m, "dot.i32-depth-headroom");
}

void prove_scalar(ProofResult& r, const SchemeModel& m) {
  // Both portable fallbacks accumulate each product straight into an i32;
  // the only bound is depth headroom (plus the shared range premise).
  prove_operand_range(r, m, "scalar.operand-range-adjusted");
  prove_i32_depth(r, m, "scalar.i32-depth-headroom");
}

// ---- sweep grid registry -------------------------------------------------
// prove_all_schemes() and proof_sweep_expected_entries() both walk these
// tables, so the sweep size is derived from one place instead of being
// hardcoded in tests.

/// Representative GEMM reduction depths: a 1x1 conv over few channels, the
/// fig09 workhorse (3x3 over 64 ch), a deep 3x3 (512 ch), and the deepest
/// view the e2e net compiles.
struct SweepShape {
  i64 m, n, k;
};
constexpr SweepShape kSweepShapes[] = {
    {16, 196, 9}, {64, 3136, 576}, {512, 49, 4608}, {512, 196, 8192}};

/// One ARM scheme's registered bit-width range. `ternary_pair_row` adds the
/// extra pair-mode row at bits_hi (the TBL pack's ternary detection).
struct SweepScheme {
  ProofScheme scheme;
  int bits_lo, bits_hi;
  bool ternary_pair_row = false;
};
constexpr SweepScheme kArmSweepGrid[] = {
    {ProofScheme::kArmSmlal, 4, 8},
    {ProofScheme::kArmMla, 2, 3},
    {ProofScheme::kArmTbl, 2, 3, /*ternary_pair_row=*/true},
    {ProofScheme::kArmSdot, 2, 8},
    {ProofScheme::kArmNcnn, 2, 8},
    {ProofScheme::kArmTraditional, 2, 8},
};
constexpr int kNativeSweepBitsLo = 2;
constexpr int kNativeSweepBitsHi = 8;

}  // namespace

const char* proof_scheme_name(ProofScheme s) {
  switch (s) {
    case ProofScheme::kArmSmlal: return "smlal";
    case ProofScheme::kArmMla: return "mla";
    case ProofScheme::kArmSdot: return "sdot";
    case ProofScheme::kArmNcnn: return "ncnn";
    case ProofScheme::kArmTraditional: return "traditional";
    case ProofScheme::kArmTbl: return "tbl";
    case ProofScheme::kNativeLut: return "lut";
    case ProofScheme::kNativeDot: return "dot";
    case ProofScheme::kNativeScalar: return "scalar";
  }
  return "?";
}

bool ProofResult::proved() const {
  for (const Obligation& o : obligations)
    if (!o.proved) return false;
  return !obligations.empty();
}

const Obligation* ProofResult::first_failed() const {
  for (const Obligation& o : obligations)
    if (!o.proved) return &o;
  return nullptr;
}

Status ProofResult::to_status() const {
  const Obligation* f = first_failed();
  if (f == nullptr && !obligations.empty()) return Status();
  std::ostringstream os;
  os << "proof failed for " << proof_scheme_name(scheme) << " at " << bits
     << "-bit: obligation '" << (f ? f->name : "<empty proof>") << "'";
  if (f) os << " — " << f->statement;
  return Status::invariant_violation(os.str());
}

SchemeModel shipping_model(ProofScheme scheme, int bits, i64 depth) {
  SchemeModel m;
  m.scheme = scheme;
  m.bits = bits;
  m.depth = depth;
  m.a_max_abs = qmax_for_bits(bits);
  m.b_max_abs = qmax_for_bits(bits);
  switch (scheme) {
    case ProofScheme::kArmSmlal:
      m.acc16_flush = armkern::smlal_flush_interval(bits);
      break;
    case ProofScheme::kArmMla:
      m.acc8_flush = armkern::mla_flush_interval(bits);
      m.second_level_rounds = armkern::kSecondLevelRounds;
      break;
    case ProofScheme::kArmTraditional:
      m.acc16_flush = bits <= 3 ? armkern::mla_flush_interval(bits) * 4
                                : armkern::smlal_flush_interval(bits);
      break;
    case ProofScheme::kArmTbl:
      // Pair mode always ships at 2-bit; 3-bit runs generic unless the
      // pack detects ternary weights (prove_arm_kernel covers both).
      m.tbl_pair = bits == 2;
      m.acc8_flush = armkern::tbl_flush_interval(bits, m.tbl_pair);
      m.tbl_build = &armkern::tbl_build_table;
      break;
    case ProofScheme::kNativeLut:
      m.acc16_flush = static_cast<int>(hal::kLutFlushInterval);
      m.pad_zero_tail = true;
      break;
    case ProofScheme::kArmSdot:
    case ProofScheme::kArmNcnn:
    case ProofScheme::kNativeDot:
    case ProofScheme::kNativeScalar:
      break;  // direct-i32 (or saturation-only) schemes: no flush declared
  }
  return m;
}

ProofResult prove(const SchemeModel& m) {
  ProofResult r;
  r.scheme = m.scheme;
  r.bits = m.bits;
  switch (m.scheme) {
    case ProofScheme::kArmSmlal: prove_smlal(r, m); break;
    case ProofScheme::kArmMla: prove_mla(r, m); break;
    case ProofScheme::kArmSdot: prove_sdot(r, m); break;
    case ProofScheme::kArmNcnn: prove_ncnn(r, m); break;
    case ProofScheme::kArmTraditional: prove_traditional(r, m); break;
    case ProofScheme::kArmTbl: prove_tbl(r, m); break;
    case ProofScheme::kNativeLut: prove_lut(r, m); break;
    case ProofScheme::kNativeDot: prove_dot(r, m); break;
    case ProofScheme::kNativeScalar: prove_scalar(r, m); break;
  }
  return r;
}

Status prove_arm_kernel(armkern::ArmKernel kernel, int bits, i64 depth) {
  ProofScheme scheme = ProofScheme::kArmSmlal;
  switch (kernel) {
    case armkern::ArmKernel::kOursGemm:
      scheme = bits <= 3 ? ProofScheme::kArmMla : ProofScheme::kArmSmlal;
      break;
    case armkern::ArmKernel::kNcnn:
      scheme = ProofScheme::kArmNcnn;
      break;
    case armkern::ArmKernel::kTraditional:
      scheme = ProofScheme::kArmTraditional;
      break;
    case armkern::ArmKernel::kSdotExt:
      scheme = ProofScheme::kArmSdot;
      break;
    case armkern::ArmKernel::kTblGemm: {
      // Both modes the plan might execute must hold: shipping default
      // (pair at 2-bit, generic at 3-bit) AND the 3-bit pair variant the
      // pack switches to when it detects ternary weights.
      SchemeModel m = shipping_model(ProofScheme::kArmTbl, bits, depth);
      LBC_RETURN_IF_ERROR(
          prove(m).to_status().with_context("plan-time kernel proof"));
      if (!m.tbl_pair) {
        m.tbl_pair = true;
        m.acc8_flush = armkern::tbl_flush_interval(bits, /*ternary_pairs=*/true);
        LBC_RETURN_IF_ERROR(
            prove(m).to_status().with_context("plan-time kernel proof"));
      }
      return Status();
    }
  }
  return prove(shipping_model(scheme, bits, depth))
      .to_status()
      .with_context("plan-time kernel proof");
}

Status prove_native_scheme(int bits, i64 depth) {
  const ProofScheme vec = hal::native_scheme_for(bits) == hal::NativeScheme::kLut
                              ? ProofScheme::kNativeLut
                              : ProofScheme::kNativeDot;
  // The dispatch layer may route to either the vector kernel or the
  // portable scalar fallback at execute time; both must hold.
  LBC_RETURN_IF_ERROR(prove(shipping_model(vec, bits, depth))
                          .to_status()
                          .with_context("plan-time native proof"));
  return prove(shipping_model(ProofScheme::kNativeScalar, bits, depth))
      .to_status()
      .with_context("plan-time native proof");
}

std::string ProofSweepReport::failure_summary() const {
  std::ostringstream os;
  os << failures << " of " << entries.size() << " proofs failed";
  for (const ProofSweepEntry& e : entries)
    if (!e.proved) os << "\n  " << e.config << ": " << e.detail;
  return os.str();
}

ProofSweepReport prove_all_schemes() {
  ProofSweepReport rep;
  const auto run = [&rep](const SchemeModel& m, const std::string& config) {
    const ProofResult r = prove(m);
    rep.obligations += static_cast<int>(r.obligations.size());
    ProofSweepEntry e;
    e.config = config;
    e.proved = r.proved();
    if (const Obligation* f = r.first_failed())
      e.detail = f->name + ": " + f->statement;
    if (!e.proved) ++rep.failures;
    rep.entries.push_back(std::move(e));
  };

  const auto arm_config = [](ProofScheme s, int bits, const SweepShape& sh,
                             bool sdot) {
    const armkern::GemmBlocking b =
        armkern::default_blocking(sh.m, sh.n, sh.k, sdot);
    std::ostringstream os;
    os << proof_scheme_name(s) << " b" << bits << " k=" << sh.k << " mc=" << b.mc
       << " kc=" << b.kc << " nc=" << b.nc;
    return os.str();
  };

  for (const SweepShape& sh : kSweepShapes) {
    // ARM schemes over the registered scheme x bit-width grid.
    for (const SweepScheme& g : kArmSweepGrid) {
      for (int bits = g.bits_lo; bits <= g.bits_hi; ++bits)
        run(shipping_model(g.scheme, bits, sh.k),
            arm_config(g.scheme, bits, sh, g.scheme == ProofScheme::kArmSdot));
      if (g.ternary_pair_row) {
        // The pair variant the pack switches to on ternary weights at the
        // top of the scheme's range — a distinct mode with its own entry
        // bound, swept explicitly.
        SchemeModel tp = shipping_model(g.scheme, g.bits_hi, sh.k);
        tp.tbl_pair = true;
        tp.acc8_flush =
            armkern::tbl_flush_interval(g.bits_hi, /*ternary_pairs=*/true);
        run(tp, arm_config(g.scheme, g.bits_hi, sh, false) + " ternary-pair");
      }
    }
    // Native schemes under their default {rb, cb} tiling (the tiling is
    // pure loop order — recorded for the grid, no proof term depends on it).
    for (int bits = kNativeSweepBitsLo; bits <= kNativeSweepBitsHi; ++bits) {
      const hal::NativeBlocking nb =
          hal::default_native_blocking(sh.m, sh.n, sh.k, bits);
      const ProofScheme vec = hal::native_scheme_for(bits) ==
                                      hal::NativeScheme::kLut
                                  ? ProofScheme::kNativeLut
                                  : ProofScheme::kNativeDot;
      std::ostringstream os;
      os << proof_scheme_name(vec) << " b" << bits << " k=" << sh.k
         << " rb=" << nb.rb << " cb=" << nb.cb;
      run(shipping_model(vec, bits, sh.k), os.str());
      std::ostringstream oss;
      oss << "scalar b" << bits << " k=" << sh.k << " rb=" << nb.rb
          << " cb=" << nb.cb;
      run(shipping_model(ProofScheme::kNativeScalar, bits, sh.k), oss.str());
    }
  }
  return rep;
}

int proof_sweep_expected_entries() {
  int per_shape = 0;
  for (const SweepScheme& g : kArmSweepGrid)
    per_shape += g.bits_hi - g.bits_lo + 1 + (g.ternary_pair_row ? 1 : 0);
  per_shape += 2 * (kNativeSweepBitsHi - kNativeSweepBitsLo + 1);
  return static_cast<int>(std::size(kSweepShapes)) * per_shape;
}

}  // namespace lbc::check
