// Optimized Winograd F(2x2, 3x3) convolution for 4-6 bit input (Sec. 3.4).
//
// Structure (the standard winograd-as-16-GEMMs decomposition):
//  1. offline: transformed weights U_e = round(G g G^T) per winograd
//     coordinate e, stored int8 (winograd-domain quantization; |U| <=
//     round(9/4 * qmax) fits int8 for <= 6-bit weights);
//  2. input transform: V_e = (B^T d B)_e per 4x4 tile and channel, |V| <=
//     4*qmax <= 124 for <= 6-bit activations, stored int8;
//  3. 16 batched GEMMs M_e[out_c x tiles] = U_e[out_c x in_c] * V_e[in_c x
//     tiles] on the SMLAL scheme, with the flush interval recomputed from
//     the *transformed* ranges (winograd_flush_interval below) — this is
//     why the paper notes winograd runs on SMLAL rather than MLA, which
//     also explains why it only pays off at 4-6 bit;
//  4. inverse transform Y = A^T M A per tile.
//
// Step 1 is pure weight work: winograd_plan_weights runs it once at plan
// compile (transform + GEMM A-panel packing, both offline/untallied), and
// winograd_conv_prepacked executes steps 2-4 against the compiled weights
// with all scratch (V/M matrices, packed-B panels) drawn from a Workspace.
//
// Bit-exact against ref::winograd_conv_s32(kRoundedInt8).
#pragma once

#include <vector>

#include "armkern/pack.h"
#include "armsim/counters.h"
#include "common/conv_shape.h"
#include "common/tensor.h"

namespace lbc {
class Workspace;
namespace armsim {
class Verifier;
}  // namespace armsim
}  // namespace lbc

namespace lbc::armkern {

/// Safe SMLAL:SADDW flush interval for the transformed operand ranges,
/// clamped to the 4-bit unrolling factor 32.
int winograd_flush_interval(int bits);

struct WinogradStats {
  armsim::Counters counts;
  i64 transform_buf_elems = 0;  ///< V + M scratch (space accounting)
};

/// Compiled winograd weights: the 16 U_e matrices, already packed into GEMM
/// A panels. Immutable after construction — safe to share across threads.
struct WinogradWeights {
  std::vector<PackedA> u_packed;  ///< 16 entries, each out_c x in_c
  i64 out_c = 0, in_c = 0;

  i64 packed_bytes() const {
    i64 total = 0;
    for (const PackedA& u : u_packed) total += static_cast<i64>(u.data.size());
    return total;
  }
};

/// Offline weight transform + A-panel packing (execute-time counts never
/// include it: weights are prepared once in deployment). `pack_ctx` is for
/// plan-time cost accounting only — what the pack would cost per call.
WinogradWeights winograd_plan_weights(const Tensor<i8>& weight, i64 out_c,
                                      i64 in_c,
                                      armsim::Ctx* pack_ctx = nullptr);

/// Steps 2-4 against compiled weights. Requires s.winograd_eligible(),
/// 4 <= bits <= 6, and ww compiled for (s.out_c, s.in_c). When `ws` is
/// non-null all scratch comes from it (caller resets between executes).
/// A non-null `verifier` enables checked execution with the transformed
/// operand ranges (|U| <= (9q+2)/4 + 1, |V| <= 4q) seeding the analysis.
WinogradStats winograd_conv_prepacked(const ConvShape& s,
                                      const Tensor<i8>& input,
                                      const WinogradWeights& ww, int bits,
                                      Tensor<i32>& out, Workspace* ws,
                                      armsim::Verifier* verifier = nullptr);

/// One-shot wrapper: compiles the weights, then executes.
WinogradStats winograd_conv_s32(const ConvShape& s, const Tensor<i8>& input,
                                const Tensor<i8>& weight, int bits,
                                Tensor<i32>& out);

}  // namespace lbc::armkern
