// Optimized Winograd F(2x2, 3x3) convolution for 4-6 bit input (Sec. 3.4).
//
// Structure (the standard winograd-as-16-GEMMs decomposition):
//  1. offline: transformed weights U_e = round(G g G^T) per winograd
//     coordinate e, stored int8 (winograd-domain quantization; |U| <=
//     round(9/4 * qmax) fits int8 for <= 6-bit weights);
//  2. input transform: V_e = (B^T d B)_e per 4x4 tile and channel, |V| <=
//     4*qmax <= 124 for <= 6-bit activations, stored int8;
//  3. 16 batched GEMMs M_e[out_c x tiles] = U_e[out_c x in_c] * V_e[in_c x
//     tiles] on the SMLAL scheme, with the flush interval recomputed from
//     the *transformed* ranges (winograd_flush_interval below) — this is
//     why the paper notes winograd runs on SMLAL rather than MLA, which
//     also explains why it only pays off at 4-6 bit;
//  4. inverse transform Y = A^T M A per tile.
//
// Bit-exact against ref::winograd_conv_s32(kRoundedInt8).
#pragma once

#include "armsim/counters.h"
#include "common/conv_shape.h"
#include "common/tensor.h"

namespace lbc::armkern {

/// Safe SMLAL:SADDW flush interval for the transformed operand ranges,
/// clamped to the 4-bit unrolling factor 32.
int winograd_flush_interval(int bits);

struct WinogradStats {
  armsim::Counters counts;
  i64 transform_buf_elems = 0;  ///< V + M scratch (space accounting)
};

/// Requires s.winograd_eligible() and 4 <= bits <= 6.
WinogradStats winograd_conv_s32(const ConvShape& s, const Tensor<i8>& input,
                                const Tensor<i8>& weight, int bits,
                                Tensor<i32>& out);

}  // namespace lbc::armkern
