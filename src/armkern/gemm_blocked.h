// Internal entries of the Mc/Kc/Nc blocked GEMM driver (gemm_blocked.cpp),
// used by the gemm_lowbit.cpp dispatch when GemmOptions::blocking is
// enabled. The public fused-conv entries live in gemm_lowbit.h.
#pragma once

#include "armkern/gemm_lowbit.h"

namespace lbc::armkern {

/// Blocked sweep over a row-major K x N B matrix (packs one Kc x Nc block
/// at a time via pack_b_block_into). Requires opt.blocking.enabled().
GemmStats gemm_blocked_prepacked(const APanels& pa, const i8* b, i32* c,
                                 i64 m, i64 n, i64 k, const GemmOptions& opt);
GemmStats gemm_blocked_sdot_prepacked(const SdotAPanels& pa, const i8* b,
                                      i32* c, i64 m, i64 n, i64 k,
                                      const GemmOptions& opt);
GemmStats gemm_blocked_tbl_prepacked(const TblAPanels& ta, const i8* b,
                                     i32* c, i64 m, i64 n, i64 k,
                                     const GemmOptions& opt);

}  // namespace lbc::armkern
