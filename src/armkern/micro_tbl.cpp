#include "armkern/micro.h"

namespace lbc::armkern {

using namespace armsim;

void micro_tbl_16x4(Ctx& ctx, const u8* idx_panel, const i8* table_panel,
                    i64 groups, int flush, i32* c) {
  // Two-level accumulation (the MLA scheme's trick, Sec. 3.4): each group
  // step is one TBL shuffle plus one ADD.16B into a byte accumulator;
  // `flush` = tbl_flush_interval(bits, pair) group steps fit the i8 lane
  // (|entry| <= tbl_entry_bound), then sshll/saddw widen into the 32-bit
  // tile. Checked-execution contract: the declared acc8 flush interval and
  // the 4 TBL : 2 load CAL/LD ratio. No spill slots: 1 idx + 4 tables +
  // 1 product + 4 i8 acc + 1 i16 temp + 16 i32 accumulators = 27 of 32.
  const VerifyScope vs(ctx, KernelSpec{.name = "micro_tbl_16x4",
                                       .acc8_flush = flush,
                                       .cal_ld_min = 1.5,
                                       .cal_ld_max = 2.5});
  int8x16 acc8[4];
  int32x4 acc32[4][4];
  for (int s = 0; s < 4; ++s) {
    movi_zero(ctx, acc8[s]);
    for (int g = 0; g < 4; ++g) movi_zero(ctx, acc32[s][g]);
  }

  auto flush_8_to_32 = [&] {
    for (int s = 0; s < 4; ++s) {
      int16x8 wide;
      sshll_s8(ctx, wide, acc8[s]);
      saddw_s16(ctx, acc32[s][0], wide);
      saddw2_s16(ctx, acc32[s][1], wide);
      sshll2_s8(ctx, wide, acc8[s]);
      saddw_s16(ctx, acc32[s][2], wide);
      saddw2_s16(ctx, acc32[s][3], wide);
      movi_zero(ctx, acc8[s]);
    }
  };

  i64 g = 0;
  while (g < groups) {
    const i64 steps = std::min<i64>(flush, groups - g);
    for (i64 s = 0; s < steps; ++s) {
      uint8x16 idx;
      ld1_u8(ctx, idx_panel + (g + s) * 16, idx);
      int8x16 tables[4];
      ld1x4_s8(ctx, table_panel + (g + s) * 64, tables);
      for (int slot = 0; slot < 4; ++slot) {
        int8x16 prod;
        tbl_s8(ctx, prod, tables[slot], idx);
        add_s8(ctx, acc8[slot], prod);
      }
    }
    ctx.tally(Op::kLoop);
    g += steps;
    flush_8_to_32();
  }

  for (int s = 0; s < 4; ++s)
    for (int q = 0; q < 4; ++q) st1_s32(ctx, acc32[s][q], c + s * 16 + q * 4);
}

}  // namespace lbc::armkern
