#include "armkern/bitserial.h"

#include "common/status.h"
#include <vector>

#include "common/align.h"
#include "common/workspace.h"

#include "armsim/neon.h"

namespace lbc::armkern {

using namespace armsim;

namespace {

// Pack the length-k vector `src` (stride `stride` between elements) into
// `bits` bit planes of `chunk_bytes` bytes each (zero-padded past k).
// Bit kk of plane p is bit p of the two's-complement value. Every plane
// byte is written (zeroed first), so arena-backed destinations are safe.
void pack_planes(const i8* src, i64 k, i64 stride, int bits, i64 chunk_bytes,
                 u8* planes /* [bits][chunk_bytes] */) {
  for (int p = 0; p < bits; ++p) {
    u8* pl = planes + p * chunk_bytes;
    for (i64 i = 0; i < chunk_bytes; ++i) pl[i] = 0;
    for (i64 kk = 0; kk < k; ++kk) {
      const u8 v =
          static_cast<u8>(static_cast<u8>(src[kk * stride]) & ((1u << bits) - 1u));
      if ((v >> p) & 1) pl[kk / 8] |= static_cast<u8>(1u << (kk % 8));
    }
  }
}

// Online bit-packing cost: per 128 elements, the data is loaded once
// (8 LD1 of int8) and each plane pays a shift/insert chain plus a store.
void tally_pack_online(Ctx& ctx, i64 elems, int bits) {
  const u64 blocks = static_cast<u64>(ceil_div(elems, 128));
  ctx.tally(Op::kLd1, blocks * 8);
  ctx.tally(Op::kShift, blocks * 6 * static_cast<u64>(bits));
  ctx.tally(Op::kSt1, blocks * static_cast<u64>(bits));
  ctx.tally(Op::kLoop, blocks);
}

}  // namespace

BitserialWeights bitserial_plan_weights(const i8* a, i64 m, i64 k, int bits,
                                        armsim::Ctx* pack_ctx) {
  LBC_CHECK_MSG(bits == 1 || bits == 2, "bitserial gemm only supports 1-2 bit");
  // UADALP headroom: each 128-bit chunk adds at most 16 to a u16 lane.
  LBC_CHECK_MSG(ceil_div(k, 128) * 16 < 65535, "K too large for one u16 chain");
  BitserialWeights aw;
  aw.m = m;
  aw.k = k;
  aw.bits = bits;
  aw.chunk_bytes = round_up(k, 128) / 8;  // whole 16B vectors
  aw.planes.resize(static_cast<size_t>(m * bits * aw.chunk_bytes));
  for (i64 i = 0; i < m; ++i)
    pack_planes(a + i * k, k, 1, bits, aw.chunk_bytes,
                aw.planes.data() + i * bits * aw.chunk_bytes);
  if (pack_ctx) tally_pack_online(*pack_ctx, m * k, bits);
  return aw;
}

BitserialStats bitserial_gemm_prepacked(const BitserialWeights& aw,
                                        const i8* b, i32* c, i64 n,
                                        Workspace* ws,
                                        armsim::Verifier* verifier) {
  const i64 m = aw.m, k = aw.k;
  const int bits = aw.bits;
  const i64 chunk_bytes = aw.chunk_bytes;
  const i64 chunks = chunk_bytes / 16;

  BitserialStats stats;
  Ctx ctx;
  ctx.verifier = verifier;

  // Online activation planes (B columns), arena-backed when possible.
  AlignedVector<u8> own_bp;
  u8* bp;
  const i64 bp_bytes = n * bits * chunk_bytes;
  if (ws != nullptr) {
    bp = ws->alloc_n<u8>(bp_bytes);
  } else {
    own_bp.resize(static_cast<size_t>(bp_bytes));
    bp = own_bp.data();
  }
  for (i64 j = 0; j < n; ++j)
    pack_planes(b + j, k, n, bits, chunk_bytes, bp + j * bits * chunk_bytes);
  tally_pack_online(ctx, k * n, bits);
  stats.plane_buf_elems = static_cast<i64>(aw.planes.size()) + bp_bytes;

  // Checked-execution contract: one scope over the whole popcount GEMM (no
  // flush interval or CAL/LD band to declare — accumulation is widening at
  // every level). The plane buffers are the only vector-load sources.
  if (verifier != nullptr) {
    verifier->add_region(aw.planes.data(),
                         static_cast<i64>(aw.planes.size()),
                         "bitserial A planes");
    verifier->add_region(bp, bp_bytes, "bitserial B planes");
  }
  const VerifyScope vs(ctx, KernelSpec{.name = "bitserial_gemm"});

  // Plane coefficients under two's complement.
  i32 coef[2] = {1, 0};
  if (bits == 2) coef[1] = -2;
  if (bits == 1) coef[0] = -1;  // 1-bit two's complement: {0, -1}

  for (i64 i = 0; i < m; ++i) {
    const u8* arow = aw.planes.data() + i * bits * chunk_bytes;
    for (i64 j = 0; j < n; ++j) {
      const u8* bcol = bp + j * bits * chunk_bytes;
      i32 acc = 0;
      for (int p = 0; p < bits; ++p) {
        for (int q = 0; q < bits; ++q) {
          uint16x8 acc16;
          movi_zero(ctx, acc16);
          for (i64 ch = 0; ch < chunks; ++ch) {
            uint8x16 av, bv, anded, counts;
            ld1_u8(ctx, arow + p * chunk_bytes + ch * 16, av);
            ld1_u8(ctx, bcol + q * chunk_bytes + ch * 16, bv);
            and_u8(ctx, anded, av, bv);
            cnt_u8(ctx, counts, anded);
            uadalp_u8(ctx, acc16, counts);
            ctx.tally(Op::kLoop);
          }
          int32x4 acc32;
          def_reg(ctx, acc32, 0, 0);  // zero-initialized by construction
          sadalp_u16(ctx, acc32, acc16);  // semantics only; cost tallied below
          acc += coef[p] * coef[q] * addv_s32(ctx, acc32);
          // Back out the per-pair reduction tallies charged just above:
          // the optimized epilogue combines the pair counters in 16-bit
          // vectors first (shifts + adds) and reduces ONCE per output.
          ctx.counts[Op::kSadalp] -= 1;
          ctx.counts[Op::kAddv] -= 1;
        }
      }
      // Vector-combined epilogue: +-2^k coefficient folding on the 16-bit
      // plane counters (3 shifts + 3 adds for 2-bit), then one SADALP +
      // ADDV reduction and a scalar store.
      if (bits == 2) {
        ctx.tally(Op::kShift, 3);
        ctx.tally(Op::kAdd, 3);
      }
      ctx.tally(Op::kSadalp, 1);
      ctx.tally(Op::kAddv, 1);
      c[i * n + j] = acc;
      ctx.tally(Op::kScalar);
    }
  }

  stats.counts = ctx.counts;
  return stats;
}

BitserialStats bitserial_gemm_s8s32(const i8* a, const i8* b, i32* c, i64 m,
                                    i64 n, i64 k, int bits) {
  const BitserialWeights aw = bitserial_plan_weights(a, m, k, bits);
  return bitserial_gemm_prepacked(aw, b, c, n, nullptr);
}

}  // namespace lbc::armkern
