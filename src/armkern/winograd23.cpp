#include "armkern/winograd23.h"

#include <algorithm>
#include "common/status.h"
#include <vector>

#include "armkern/gemm_lowbit.h"
#include "common/align.h"
#include "common/workspace.h"
#include "armsim/neon.h"
#include "refconv/winograd_ref.h"

namespace lbc::armkern {

using namespace armsim;

int winograd_flush_interval(int bits) {
  const i32 q = qmax_for_bits(bits);
  const i32 umax = (9 * q + 2) / 4 + 1;  // rounded-weight bound
  const i32 vmax = 4 * q;                // input-transform bound
  const int safe = static_cast<int>(32767 / (umax * vmax));
  return std::clamp(safe, 1, 32);
}

WinogradWeights winograd_plan_weights(const Tensor<i8>& weight, i64 out_c,
                                      i64 in_c, armsim::Ctx* pack_ctx) {
  // Transformed weights, re-laid out as 16 contiguous [out_c x in_c]
  // matrices and packed into A panels (offline; not tallied).
  WinogradWeights ww;
  ww.out_c = out_c;
  ww.in_c = in_c;
  const Tensor<i8> u8 = ref::winograd_weight_rounded(weight, out_c, in_c);
  ww.u_packed.reserve(16);
  AlignedVector<i8> u_mat(static_cast<size_t>(out_c * in_c));
  for (int e = 0; e < 16; ++e) {
    for (i64 oc = 0; oc < out_c; ++oc)
      for (i64 ic = 0; ic < in_c; ++ic)
        u_mat[static_cast<size_t>(oc * in_c + ic)] =
            u8.at(oc, ic, e / 4, e % 4);
    ww.u_packed.push_back(pack_a(pack_ctx, u_mat.data(), out_c, in_c));
  }
  return ww;
}

WinogradStats winograd_conv_prepacked(const ConvShape& s,
                                      const Tensor<i8>& input,
                                      const WinogradWeights& ww, int bits,
                                      Tensor<i32>& out, Workspace* ws,
                                      armsim::Verifier* verifier) {
  LBC_CHECK_MSG(s.winograd_eligible(), "winograd23: shape is not 3x3/stride-1");
  LBC_CHECK_MSG(bits >= 4 && bits <= 6, "winograd23: bits outside [4, 6]");
  LBC_CHECK_MSG(ww.out_c == s.out_c && ww.in_c == s.in_c &&
                    ww.u_packed.size() == 16,
                "winograd23: compiled weights do not match conv shape");
  WinogradStats stats;
  Ctx ctx;
  ctx.verifier = verifier;

  const i64 oh = s.out_h(), ow = s.out_w();
  const i64 nth = ceil_div(oh, 2), ntw = ceil_div(ow, 2);
  const i64 tiles = s.batch * nth * ntw;
  out = Tensor<i32>(Shape4{s.batch, s.out_c, oh, ow}, 0);

  // ---- scratch: V_e [in_c x tiles] i8 and M_e [out_c x tiles] i32, from
  // the arena when one is provided. Every element of every V/M matrix is
  // written below (the tile loops cover all (ic, t) and the GEMM scatters
  // every C element), so arena reuse cannot leak stale values.
  std::vector<AlignedVector<i8>> own_v;
  std::vector<AlignedVector<i32>> own_m;
  i8* v_mats[16];
  i32* m_mats[16];
  if (ws != nullptr) {
    for (int e = 0; e < 16; ++e)
      v_mats[e] = ws->alloc_n<i8>(s.in_c * tiles);
    for (int e = 0; e < 16; ++e)
      m_mats[e] = ws->alloc_n<i32>(s.out_c * tiles);
  } else {
    own_v.resize(16);
    own_m.resize(16);
    for (int e = 0; e < 16; ++e) {
      own_v[static_cast<size_t>(e)].resize(static_cast<size_t>(s.in_c * tiles));
      own_m[static_cast<size_t>(e)].resize(
          static_cast<size_t>(s.out_c * tiles));
      v_mats[e] = own_v[static_cast<size_t>(e)].data();
      m_mats[e] = own_m[static_cast<size_t>(e)].data();
    }
  }

  const i32 q = qmax_for_bits(bits);
  const i32 umax = (9 * q + 2) / 4 + 1;  // transformed-weight bound
  const i32 vmax = 4 * q;                // transformed-activation bound
  if (verifier != nullptr) {
    for (int e = 0; e < 16; ++e) {
      verifier->add_region(v_mats[e], s.in_c * tiles, "winograd V matrix",
                           -vmax, vmax);
      verifier->add_region(m_mats[e],
                           s.out_c * tiles * static_cast<i64>(sizeof(i32)),
                           "winograd M matrix");
    }
  }

  // ---- input transform: V_e [in_c x tiles], int8.
  for (i64 b = 0; b < s.batch; ++b)
    for (i64 ic = 0; ic < s.in_c; ++ic)
      for (i64 th = 0; th < nth; ++th)
        for (i64 tw = 0; tw < ntw; ++tw) {
          i16 d[16];
          for (int r = 0; r < 4; ++r)
            for (int col = 0; col < 4; ++col) {
              const i64 ih = th * 2 + r - s.pad;
              const i64 iw = tw * 2 + col - s.pad;
              d[r * 4 + col] =
                  (ih < 0 || ih >= s.in_h || iw < 0 || iw >= s.in_w)
                      ? i16{0}
                      : static_cast<i16>(input.at(b, ic, ih, iw));
            }
          i16 v[16];
          ref::winograd_input_tile(d, v);
          const i64 t = (b * nth + th) * ntw + tw;
          for (int e = 0; e < 16; ++e) {
            LBC_CHECK_MSG(v[e] >= -128 && v[e] <= 127,
                          "winograd23: transformed activation overflows i8");
            i8* dst = &v_mats[e][ic * tiles + t];
            *dst = static_cast<i8>(v[e]);
            ctx.mem(dst, 1);  // scatter store: 16 matrices, 16 cache lines
          }
          // Transform issue cost: 4x4 byte gather (two 8-byte loads), 32
          // adds across 8-lane vectors, 16 single-byte scatter stores
          // (their cache behaviour is charged by the model above; the
          // byte-granular store issue itself is the dominant overhead —
          // it cannot be vectorized across the 16 destination matrices).
          ctx.tally(Op::kLd1_64, 2);
          ctx.tally(Op::kAdd, 4);
          ctx.tally(Op::kScalar, 16 + 8);
          ctx.tally(Op::kLoop, 1);
        }

  // ---- 16 batched GEMMs on the SMLAL scheme, A panels prepacked.
  const int flush = winograd_flush_interval(bits);
  for (int e = 0; e < 16; ++e) {
    GemmOptions opt;
    opt.bits = 8;  // operands are transformed values; range handled by flush
    opt.kernel = ArmKernel::kOursGemm;
    opt.flush_override = flush;
    opt.workspace = ws;
    opt.verifier = verifier;
    opt.a_max_abs = umax;  // true transformed ranges, not the bits-8 default
    opt.b_max_abs = vmax;
    const GemmStats gs = gemm_s8s32_prepacked(
        ww.u_packed[static_cast<size_t>(e)].view(), v_mats[e], m_mats[e],
        s.out_c, tiles, s.in_c, opt);
    ctx.counts.merge(gs.counts);
  }
  stats.transform_buf_elems =
      16 * s.in_c * tiles + 16 * s.out_c * tiles * static_cast<i64>(sizeof(i32));

  // ---- inverse transform.
  for (i64 b = 0; b < s.batch; ++b)
    for (i64 oc = 0; oc < s.out_c; ++oc)
      for (i64 th = 0; th < nth; ++th)
        for (i64 tw = 0; tw < ntw; ++tw) {
          const i64 t = (b * nth + th) * ntw + tw;
          i32 m[16];
          for (int e = 0; e < 16; ++e) {
            const i32* src = &m_mats[e][oc * tiles + t];
            m[e] = *src;
            ctx.mem(src, 4);  // gather load: 16 matrices, 16 cache lines
          }
          i32 y[4];
          ref::winograd_output_tile(m, y);
          for (int r = 0; r < 2; ++r)
            for (int col = 0; col < 2; ++col) {
              const i64 o_h = th * 2 + r, o_w = tw * 2 + col;
              if (o_h >= oh || o_w >= ow) continue;
              out.at(b, oc, o_h, o_w) = y[r * 2 + col];
            }
          // Inverse-transform issue cost: the 16-way gather above (cache
          // stalls charged by the model), 24 adds across 4-lane vectors,
          // 2x2 strided store.
          ctx.tally(Op::kAdd, 6);
          ctx.tally(Op::kSt1, 1);
          ctx.tally(Op::kScalar, 16 + 8);
          ctx.tally(Op::kLoop, 1);
        }

  stats.counts = ctx.counts;
  return stats;
}

WinogradStats winograd_conv_s32(const ConvShape& s, const Tensor<i8>& input,
                                const Tensor<i8>& weight, int bits,
                                Tensor<i32>& out) {
  LBC_CHECK_MSG(s.winograd_eligible(), "winograd23: shape is not 3x3/stride-1");
  LBC_CHECK_MSG(bits >= 4 && bits <= 6, "winograd23: bits outside [4, 6]");
  const WinogradWeights ww = winograd_plan_weights(weight, s.out_c, s.in_c);
  return winograd_conv_prepacked(s, input, ww, bits, out, nullptr);
}

}  // namespace lbc::armkern
