// Self-check sweep: run every shipped kernel/algo/bit-width combination
// under the invariant verifier (armsim/verifier.h) and report per-combo
// pass/fail. This is the repo's "prove the schemes safe" entry point — it
// executes each configuration on adversarial (extreme-valued) inputs so
// the interval analysis exercises the worst-case accumulator growth the
// paper's flush intervals (Table: Sec. 3.3) were derived for.
//
// Used by the tier-1 test suite and the verify_invariants bench; also a
// convenient one-call API for users who modify a kernel and want the
// whole contract re-checked.
#pragma once

#include <string>
#include <vector>

#include "armkern/conv_arm.h"
#include "common/status.h"

namespace lbc::armkern {

/// One swept configuration and its checked-execution outcome.
struct KernelVerifyEntry {
  int bits = 8;
  ArmKernel kernel = ArmKernel::kOursGemm;
  ConvAlgo algo = ConvAlgo::kGemm;
  std::string shape;          ///< human-readable geometry
  std::string executed_algo;  ///< rung that actually ran (after fallback)
  Status status;              ///< OK, or the kInvariantViolation detail
};

/// Aggregate result of the sweep.
struct KernelVerifyReport {
  std::vector<KernelVerifyEntry> entries;
  int failures = 0;
  bool ok() const { return failures == 0; }
  /// Multi-line summary, one line per failing entry (empty when ok()).
  std::string failure_summary() const;
};

/// Sweep bits 2..8 across every kernel (ours / ncnn / traditional / sdot /
/// tbl) and algo (gemm / winograd / bitserial / direct / reference) that is
/// eligible at that width, over a small set of representative conv shapes,
/// executing each under the verifier on extreme-valued inputs.
KernelVerifyReport verify_all_kernels();

/// Number of entries verify_all_kernels() emits, derived from the same
/// registered kernel x algo x bits x shape grid the sweep walks — tests
/// compare against this instead of a hardcoded literal, so a newly
/// registered scheme cannot silently shrink the sweep.
int kernel_verify_expected_entries();

}  // namespace lbc::armkern
