// Direct (im2col-free) convolution on the emulated NEON ISA — the first
// algorithm class of paper Sec. 2.2 ("simple to implement but inefficient
// ... generally optimized to use the cache and SIMD instructions").
//
// The kernel vectorizes over output width: for each filter tap (ic, kh,
// kw) it loads 8 contiguous input pixels, widens them, and SMLALs them
// against the broadcast weight into int32 accumulators. No packing and no
// im2col buffer (zero space overhead), but every tap re-walks the input
// and the 16-bit multiply path halves MAC width — which is why the paper
// builds on GEMM instead; the ablation bench quantifies the gap.
#pragma once

#include "armsim/counters.h"
#include "common/conv_shape.h"
#include "common/tensor.h"

namespace lbc {
namespace armsim {
class Verifier;
}  // namespace armsim
}  // namespace lbc

namespace lbc::armkern {

struct DirectConvStats {
  armsim::Counters counts;
};

/// Bit-exact with ref::conv2d_s32 for inputs within the adjusted range of
/// any bit width (the 16-bit multiply path cannot overflow on int8 data).
/// A non-null `verifier` enables checked execution; the modeled row gather
/// may overrun the input tensor by up to 15 bytes at the very end, which
/// the input region's overread slack absorbs.
DirectConvStats direct_conv_s32(const ConvShape& s, const Tensor<i8>& input,
                                const Tensor<i8>& weight, Tensor<i32>& out,
                                armsim::Verifier* verifier = nullptr);

}  // namespace lbc::armkern
