// GEMM micro kernels on the emulated NEON ISA. Each computes one
// kMr x kNr (16 x 4) tile of C from packed panels:
//   a_panel: [kc][16] (one LD1 per depth step)
//   b_panel: [kc][4]  (one LD4R per depth step)
//   c:       16 x 4 tile, COLUMN-major (c[col*16 + row]), int32.
//
// micro_smlal_16x4 — the paper's 4-8 bit scheme (Fig. 3a, Alg. 1):
//   SMLAL/SMLAL2 into 16-bit lanes, SADDW/SADDW2 flush to 32-bit every
//   `flush` depth steps, with the Alg. 1 v<->x spill traffic charged.
// micro_mla_16x4 — the paper's 2-3 bit scheme (Fig. 3b):
//   MLA into 8-bit lanes, SADDW (8->16) flush every `flush8` steps,
//   second-level SADDW (16->32) every kSecondLevelRounds flushes.
// micro_ncnn_16x4 — the ncnn 8-bit baseline (Sec. 5.2): inputs widened to
//   16-bit registers (SSHLL), SMLAL on 16-bit lanes straight into 32-bit.
#pragma once

#include <algorithm>

#include "armsim/neon.h"
#include "armkern/schemes.h"

namespace lbc::armkern {

void micro_smlal_16x4(armsim::Ctx& ctx, const i8* a_panel, const i8* b_panel,
                      i64 kc, int flush, i32* c);

void micro_mla_16x4(armsim::Ctx& ctx, const i8* a_panel, const i8* b_panel,
                    i64 kc, int flush8, i32* c);

void micro_ncnn_16x4(armsim::Ctx& ctx, const i8* a_panel, const i8* b_panel,
                     i64 kc, i32* c);

/// ARMv8.2 extension: SDOT kernel over pack_sdot panels (a: [k/4][16][4],
/// b: [k/4][4][4], k_pad a multiple of 4).
void micro_sdot_16x4(armsim::Ctx& ctx, const i8* a_panel, const i8* b_panel,
                     i64 k_pad, i32* c);

/// TBL lookup-table scheme (2-3 bit, DESIGN.md Sec. 16). Orientation-
/// agnostic 4-slot x 16-lane tile:
///   idx_panel:   [groups][16]    u8 — one index vector per group step
///   table_panel: [groups][4][16] i8 — four 16-entry product tables per step
///   c:           c[slot*16 + lane], int32.
/// With activation-side tables (large-M orientation) a lane is a C row and
/// a slot a C column (the standard column-major 16x4 tile); with weight-
/// side tables a slot is a C row and a lane a C column (a 4x16 tile).
/// `flush` bounds ADD.16B entry accumulations per 8-bit lane between the
/// sshll/saddw flushes into the i32 tile — pass
/// tbl_flush_interval(bits, pair) so the byte lanes cannot wrap.
void micro_tbl_16x4(armsim::Ctx& ctx, const u8* idx_panel,
                    const i8* table_panel, i64 groups, int flush, i32* c);

}  // namespace lbc::armkern
