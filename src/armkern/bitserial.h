// Bit-serial popcount GEMM — the TVM/Cowan-style baseline of paper Fig. 9.
//
// Each b-bit two's-complement operand is decomposed into b bit planes
// packed 128 bits per vector register along the K dimension. A dot product
// becomes a signed combination of plane-pair popcounts:
//   dot(a, w) = sum_{p,q} coef(p) * coef(q) * popcount(Aplane_p & Bplane_q)
// with coef(p) = 2^p except the sign plane, coef(b-1) = -2^(b-1).
// The NEON kernel is AND + CNT + UADALP per 128-bit chunk, with SADALP /
// ADDV reductions — the popcount pipeline that the paper's MLA scheme is
// compared against for 2-bit convolution (A2W2).
#pragma once

#include "armsim/counters.h"
#include "common/types.h"

namespace lbc::armkern {

struct BitserialStats {
  armsim::Counters counts;
  i64 plane_buf_elems = 0;  ///< bytes of packed bit planes (space accounting)
};

/// C[M x N] (i32, row-major) = A[M x K] (i8) * B[K x N] (i8), operands in
/// the adjusted range of `bits` (1 or 2). Bit-exact with ref::gemm_s8s32.
/// A planes are packed offline (weights, not tallied); B planes are packed
/// online and tallied.
BitserialStats bitserial_gemm_s8s32(const i8* a, const i8* b, i32* c, i64 m,
                                    i64 n, i64 k, int bits);

}  // namespace lbc::armkern
