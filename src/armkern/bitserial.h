// Bit-serial popcount GEMM — the TVM/Cowan-style baseline of paper Fig. 9.
//
// Each b-bit two's-complement operand is decomposed into b bit planes
// packed 128 bits per vector register along the K dimension. A dot product
// becomes a signed combination of plane-pair popcounts:
//   dot(a, w) = sum_{p,q} coef(p) * coef(q) * popcount(Aplane_p & Bplane_q)
// with coef(p) = 2^p except the sign plane, coef(b-1) = -2^(b-1).
// The NEON kernel is AND + CNT + UADALP per 128-bit chunk, with SADALP /
// ADDV reductions — the popcount pipeline that the paper's MLA scheme is
// compared against for 2-bit convolution (A2W2).
//
// Weight (A) planes are pure weight work: bitserial_plan_weights packs them
// once at plan compile; bitserial_gemm_prepacked packs only the activation
// (B) planes per call, into a Workspace when one is provided.
#pragma once

#include "armsim/counters.h"
#include "common/align.h"
#include "common/types.h"

namespace lbc {
class Workspace;
namespace armsim {
class Verifier;
}  // namespace armsim
}  // namespace lbc

namespace lbc::armkern {

struct BitserialStats {
  armsim::Counters counts;
  i64 plane_buf_elems = 0;  ///< bytes of packed bit planes (space accounting)
};

/// Compiled weight bit planes: [m rows][bits planes][chunk_bytes].
/// Immutable after construction — safe to share across threads.
struct BitserialWeights {
  AlignedVector<u8> planes;
  i64 m = 0, k = 0;
  int bits = 0;
  i64 chunk_bytes = 0;  ///< round_up(k, 128) / 8 — whole 16B vectors

  i64 packed_bytes() const { return static_cast<i64>(planes.size()); }
};

/// Pack the weight matrix A[M x K] into bit planes (offline; execute-time
/// counts never include it). Requires bits in {1, 2} and K within the u16
/// popcount-chain headroom. `pack_ctx` is for plan-time cost accounting
/// only — what the pack would cost per call.
BitserialWeights bitserial_plan_weights(const i8* a, i64 m, i64 k, int bits,
                                        armsim::Ctx* pack_ctx = nullptr);

/// C[M x N] = A * B against compiled weight planes; B planes are packed
/// online (tallied), into `ws` when non-null. A non-null `verifier`
/// enables checked execution over the popcount pipeline.
BitserialStats bitserial_gemm_prepacked(const BitserialWeights& aw,
                                        const i8* b, i32* c, i64 n,
                                        Workspace* ws,
                                        armsim::Verifier* verifier = nullptr);

/// C[M x N] (i32, row-major) = A[M x K] (i8) * B[K x N] (i8), operands in
/// the adjusted range of `bits` (1 or 2). Bit-exact with ref::gemm_s8s32.
/// A planes are packed offline (weights, not tallied); B planes are packed
/// online and tallied.
BitserialStats bitserial_gemm_s8s32(const i8* a, const i8* b, i32* c, i64 m,
                                    i64 n, i64 k, int bits);

}  // namespace lbc::armkern
