#include "armkern/pack.h"

#include <algorithm>

#include "armsim/verifier.h"

namespace lbc::armkern {

// Cost accounting for pack loops. Real NEON packing moves 16 bytes per
// vector op; the A pack additionally pays a strided-gather (transpose)
// overhead we charge as scalar ops per element group, and the fused
// im2col gather pays the index math (tap decomposition, bounds tests) on
// top of that.
void tally_pack_gather(armsim::Ctx* ctx, i64 elems) {
  if (!ctx) return;
  const u64 groups = static_cast<u64>(ceil_div(elems, 16));
  ctx->tally(armsim::Op::kLd1, groups);     // gather source rows
  ctx->tally(armsim::Op::kSt1, groups);     // store packed panel
  ctx->tally(armsim::Op::kScalar, groups * 2);  // transpose/index math
  ctx->tally(armsim::Op::kLoop, groups / 4 + 1);
}

void tally_pack_stream(armsim::Ctx* ctx, i64 elems) {
  if (!ctx) return;
  const u64 groups = static_cast<u64>(ceil_div(elems, 16));
  ctx->tally(armsim::Op::kLd1, groups);
  ctx->tally(armsim::Op::kSt1, groups);
  ctx->tally(armsim::Op::kLoop, groups / 4 + 1);
}

void tally_pack_im2col_gather(armsim::Ctx* ctx, i64 elems) {
  if (!ctx) return;
  tally_pack_gather(ctx, elems);
  ctx->tally(armsim::Op::kScalar, static_cast<u64>(ceil_div(elems, 8)));
}

namespace {

// Legacy internal names (the full-operand packs keep their cost classes).
void tally_pack_a(armsim::Ctx* ctx, i64 elems) { tally_pack_gather(ctx, elems); }
void tally_pack_b(armsim::Ctx* ctx, i64 elems) { tally_pack_stream(ctx, elems); }

// Under checked execution the pack's bulk cache traffic must land inside
// registered regions. ensure_region is a no-op when the driver already
// registered a (ranged) region covering the span, so driver bounds win.
void ensure_pack_regions(armsim::Ctx* ctx, const void* src, i64 src_bytes,
                         const char* src_name, const void* dst, i64 dst_bytes,
                         const char* dst_name) {
  if (ctx == nullptr || ctx->verifier == nullptr) return;
  ctx->verifier->ensure_region(src, src_bytes, src_name);
  ctx->verifier->ensure_region(dst, dst_bytes, dst_name);
}

}  // namespace

i64 packed_a_bytes(i64 m, i64 k) { return round_up(m, kMr) * k; }
i64 packed_b_bytes(i64 k, i64 n) { return round_up(n, kNr) * k; }

APanels pack_a_into(armsim::Ctx* ctx, const i8* a, i64 m, i64 k, i8* dst) {
  const i64 m_pad = round_up(m, kMr);
  for (i64 p = 0; p < m_pad / kMr; ++p) {
    i8* panel = dst + p * k * kMr;
    for (i64 kk = 0; kk < k; ++kk)
      for (i64 r = 0; r < kMr; ++r) {
        const i64 row = p * kMr + r;
        panel[kk * kMr + r] = (row < m) ? a[row * k + kk] : i8{0};
      }
  }
  tally_pack_a(ctx, m_pad * k);
  if (ctx) {
    ensure_pack_regions(ctx, a, m * k, "pack A source", dst, m_pad * k,
                        "packed A panels");
    ctx->mem_range(a, static_cast<u64>(m * k));
    ctx->mem_range(dst, static_cast<u64>(m_pad * k));
  }
  return APanels{dst, m, k, m_pad};
}

BPanels pack_b_into(armsim::Ctx* ctx, const i8* b, i64 k, i64 n, i8* dst) {
  const i64 n_pad = round_up(n, kNr);
  for (i64 q = 0; q < n_pad / kNr; ++q) {
    i8* panel = dst + q * k * kNr;
    for (i64 kk = 0; kk < k; ++kk)
      for (i64 c = 0; c < kNr; ++c) {
        const i64 col = q * kNr + c;
        panel[kk * kNr + c] = (col < n) ? b[kk * n + col] : i8{0};
      }
  }
  tally_pack_b(ctx, n_pad * k);
  if (ctx) {
    ensure_pack_regions(ctx, b, k * n, "pack B source", dst, n_pad * k,
                        "packed B panels");
    ctx->mem_range(b, static_cast<u64>(k * n));
    ctx->mem_range(dst, static_cast<u64>(n_pad * k));
  }
  return BPanels{dst, k, n, n_pad};
}

PackedA pack_a(armsim::Ctx* ctx, const i8* a, i64 m, i64 k) {
  PackedA pa;
  pa.m = m;
  pa.k = k;
  pa.m_pad = round_up(m, kMr);
  pa.data.resize(static_cast<size_t>(pa.m_pad * k));
  pack_a_into(ctx, a, m, k, pa.data.data());
  return pa;
}

PackedB pack_b(armsim::Ctx* ctx, const i8* b, i64 k, i64 n) {
  PackedB pb;
  pb.k = k;
  pb.n = n;
  pb.n_pad = round_up(n, kNr);
  pb.data.resize(static_cast<size_t>(pb.n_pad * k));
  pack_b_into(ctx, b, k, n, pb.data.data());
  return pb;
}

i64 packed_sdot_a_bytes(i64 m, i64 k) {
  return round_up(m, kMr) * round_up(k, 4);
}
i64 packed_sdot_b_bytes(i64 k, i64 n) {
  return round_up(n, kNr) * round_up(k, 4);
}

PackedSdotA pack_sdot_a(const i8* a, i64 m, i64 k, armsim::Ctx* ctx) {
  PackedSdotA pa;
  pa.m = m;
  pa.k = k;
  pa.m_pad = round_up(m, kMr);
  pa.k_pad = round_up(k, 4);
  pa.data.resize(static_cast<size_t>(pa.m_pad * pa.k_pad));
  const i64 ksteps = pa.k_pad / 4;
  for (i64 p = 0; p < pa.panels(); ++p) {
    i8* dst = pa.data.data() + p * pa.k_pad * kMr;
    for (i64 ks = 0; ks < ksteps; ++ks)
      for (i64 r = 0; r < kMr; ++r)
        for (i64 d = 0; d < 4; ++d) {
          const i64 row = p * kMr + r;
          const i64 kk = ks * 4 + d;
          dst[(ks * kMr + r) * 4 + d] =
              (row < m && kk < k) ? a[row * k + kk] : i8{0};
        }
  }
  tally_pack_a(ctx, pa.m_pad * pa.k_pad);
  if (ctx) {
    ensure_pack_regions(ctx, a, m * k, "pack SDOT A source", pa.data.data(),
                        static_cast<i64>(pa.data.size()), "packed SDOT A");
    ctx->mem_range(a, static_cast<u64>(m * k));
    ctx->mem_range(pa.data.data(), pa.data.size());
  }
  return pa;
}

SdotBPanels pack_sdot_b_into(armsim::Ctx* ctx, const i8* b, i64 k, i64 n,
                             i8* dst) {
  const i64 n_pad = round_up(n, kNr);
  const i64 k_pad = round_up(k, 4);
  const i64 ksteps = k_pad / 4;
  for (i64 q = 0; q < n_pad / kNr; ++q) {
    i8* panel = dst + q * k_pad * kNr;
    for (i64 ks = 0; ks < ksteps; ++ks)
      for (i64 c = 0; c < kNr; ++c)
        for (i64 d = 0; d < 4; ++d) {
          const i64 col = q * kNr + c;
          const i64 kk = ks * 4 + d;
          panel[(ks * kNr + c) * 4 + d] =
              (col < n && kk < k) ? b[kk * n + col] : i8{0};
        }
  }
  // The B interleave is a strided gather — same cost class as an A pack.
  tally_pack_a(ctx, n_pad * k_pad);
  if (ctx) {
    ensure_pack_regions(ctx, b, k * n, "pack SDOT B source", dst,
                        n_pad * k_pad, "packed SDOT B");
    ctx->mem_range(b, static_cast<u64>(k * n));
    ctx->mem_range(dst, static_cast<u64>(n_pad * k_pad));
  }
  return SdotBPanels{dst, n, k, n_pad, k_pad};
}

PackedSdot pack_sdot(armsim::Ctx* ctx, const i8* a, const i8* b, i64 m, i64 n,
                     i64 k) {
  PackedSdot ps;
  ps.m = m;
  ps.n = n;
  ps.k = k;
  ps.m_pad = round_up(m, kMr);
  ps.n_pad = round_up(n, kNr);
  ps.k_pad = round_up(k, 4);
  // A pack is offline (weights); B pack is tallied by pack_sdot_b_into.
  ps.a = std::move(pack_sdot_a(a, m, k).data);
  ps.b.resize(static_cast<size_t>(ps.n_pad * ps.k_pad));
  pack_sdot_b_into(ctx, b, k, n, ps.b.data());
  return ps;
}

namespace {

// One im2col element for GEMM row kg (= ic*kernel^2 + kh*kernel + kw) and
// column col (= b*out_h*out_w + oh*out_w + ow): the input value under the
// tap, or 0 when the tap falls outside the image. Mirrors
// refconv/im2col.cpp exactly — byte-identical panels are what make the
// fused path bit-exact against the materialized matrix.
inline i8 im2col_at(const ConvShape& s, const i8* in, i64 kg, i64 col) {
  const i64 ksq = s.kernel * s.kernel;
  const i64 ic = kg / ksq;
  const i64 kh = (kg / s.kernel) % s.kernel;
  const i64 kw = kg % s.kernel;
  const i64 ohw = s.out_h() * s.out_w();
  const i64 b = col / ohw;
  const i64 oh = (col % ohw) / s.out_w();
  const i64 ow = col % s.out_w();
  const i64 ih = oh * s.stride + kh - s.pad;
  const i64 iw = ow * s.stride + kw - s.pad;
  if (ih < 0 || ih >= s.in_h || iw < 0 || iw >= s.in_w) return 0;
  return in[((b * s.in_c + ic) * s.in_h + ih) * s.in_w + iw];
}

// Cache traffic of the fused gather: for each im2col row in the block, the
// touched input bytes form one contiguous span per output row (clamped to
// the image). Feeding the real spans through ctx->mem keeps the gather's
// L1/L2 behaviour — the whole point of the blocked schedule — measured,
// not asserted.
void touch_conv_gather(armsim::Ctx* ctx, const ConvShape& s, const i8* in,
                       i64 k0, i64 kc, i64 n0, i64 nc) {
  const i64 ohw = s.out_h() * s.out_w();
  for (i64 kk = 0; kk < kc; ++kk) {
    const i64 kg = k0 + kk;
    const i64 ksq = s.kernel * s.kernel;
    const i64 ic = kg / ksq;
    const i64 kh = (kg / s.kernel) % s.kernel;
    const i64 kw = kg % s.kernel;
    i64 col = n0;
    while (col < n0 + nc) {
      const i64 b = col / ohw;
      const i64 rem = col % ohw;
      const i64 oh = rem / s.out_w();
      const i64 ow0 = rem % s.out_w();
      const i64 ow1 =
          std::min<i64>(s.out_w() - 1, ow0 + (n0 + nc - 1 - col));
      const i64 ih = oh * s.stride + kh - s.pad;
      if (ih >= 0 && ih < s.in_h) {
        const i64 iw_lo = std::max<i64>(ow0 * s.stride + kw - s.pad, 0);
        const i64 iw_hi =
            std::min<i64>(ow1 * s.stride + kw - s.pad, s.in_w - 1);
        if (iw_lo <= iw_hi)
          ctx->mem_range(in + ((b * s.in_c + ic) * s.in_h + ih) * s.in_w +
                             iw_lo,
                         static_cast<u64>(iw_hi - iw_lo + 1));
      }
      col += ow1 - ow0 + 1;
    }
  }
}

}  // namespace

BPanels pack_b_block_into(armsim::Ctx* ctx, const i8* b, i64 k, i64 n, i64 k0,
                          i64 kc, i64 n0, i64 nc, i8* dst) {
  const i64 nc_pad = round_up(nc, kNr);
  for (i64 q = 0; q < nc_pad / kNr; ++q) {
    i8* panel = dst + q * kc * kNr;
    for (i64 kk = 0; kk < kc; ++kk)
      for (i64 c = 0; c < kNr; ++c) {
        const i64 col = n0 + q * kNr + c;
        panel[kk * kNr + c] =
            (q * kNr + c < nc && col < n) ? b[(k0 + kk) * n + col] : i8{0};
      }
  }
  tally_pack_stream(ctx, nc_pad * kc);
  if (ctx) {
    ensure_pack_regions(ctx, b, k * n, "pack B source", dst, nc_pad * kc,
                        "packed B block");
    for (i64 kk = 0; kk < kc; ++kk)
      ctx->mem_range(b + (k0 + kk) * n + n0,
                     static_cast<u64>(std::min(nc, n - n0)));
    ctx->mem_range(dst, static_cast<u64>(nc_pad * kc));
  }
  return BPanels{dst, kc, nc, nc_pad};
}

BPanels pack_b_panels_from_conv(armsim::Ctx* ctx, const ConvShape& s,
                                const i8* input, i64 k0, i64 kc,
                                i64 n0, i64 nc, i8* dst) {
  const i64 nc_pad = round_up(nc, kNr);
  const i8* in = input;
  for (i64 q = 0; q < nc_pad / kNr; ++q) {
    i8* panel = dst + q * kc * kNr;
    for (i64 kk = 0; kk < kc; ++kk)
      for (i64 c = 0; c < kNr; ++c) {
        const i64 j = q * kNr + c;
        panel[kk * kNr + c] =
            (j < nc) ? im2col_at(s, in, k0 + kk, n0 + j) : i8{0};
      }
  }
  tally_pack_im2col_gather(ctx, nc_pad * kc);
  if (ctx) {
    ensure_pack_regions(ctx, in, s.batch * s.in_c * s.in_h * s.in_w,
                        "conv input", dst, nc_pad * kc, "packed B block");
    touch_conv_gather(ctx, s, in, k0, kc, n0, nc);
    ctx->mem_range(dst, static_cast<u64>(nc_pad * kc));
  }
  return BPanels{dst, kc, nc, nc_pad};
}

SdotBPanels pack_sdot_b_block_into(armsim::Ctx* ctx, const i8* b, i64 k,
                                   i64 n, i64 k0, i64 kc, i64 n0, i64 nc,
                                   i8* dst) {
  const i64 nc_pad = round_up(nc, kNr);
  const i64 kc_pad = round_up(kc, 4);
  for (i64 q = 0; q < nc_pad / kNr; ++q) {
    i8* panel = dst + q * kc_pad * kNr;
    for (i64 ks = 0; ks < kc_pad / 4; ++ks)
      for (i64 c = 0; c < kNr; ++c)
        for (i64 d = 0; d < 4; ++d) {
          const i64 j = q * kNr + c;
          const i64 kk = ks * 4 + d;
          panel[(ks * kNr + c) * 4 + d] =
              (j < nc && kk < kc && n0 + j < n)
                  ? b[(k0 + kk) * n + n0 + j]
                  : i8{0};
        }
  }
  tally_pack_gather(ctx, nc_pad * kc_pad);
  if (ctx) {
    ensure_pack_regions(ctx, b, k * n, "pack SDOT B source", dst,
                        nc_pad * kc_pad, "packed B block");
    for (i64 kk = 0; kk < kc; ++kk)
      ctx->mem_range(b + (k0 + kk) * n + n0,
                     static_cast<u64>(std::min(nc, n - n0)));
    ctx->mem_range(dst, static_cast<u64>(nc_pad * kc_pad));
  }
  return SdotBPanels{dst, nc, kc, nc_pad, kc_pad};
}

SdotBPanels pack_sdot_b_panels_from_conv(armsim::Ctx* ctx, const ConvShape& s,
                                         const i8* input, i64 k0,
                                         i64 kc, i64 n0, i64 nc, i8* dst) {
  const i64 nc_pad = round_up(nc, kNr);
  const i64 kc_pad = round_up(kc, 4);
  const i8* in = input;
  for (i64 q = 0; q < nc_pad / kNr; ++q) {
    i8* panel = dst + q * kc_pad * kNr;
    for (i64 ks = 0; ks < kc_pad / 4; ++ks)
      for (i64 c = 0; c < kNr; ++c)
        for (i64 d = 0; d < 4; ++d) {
          const i64 j = q * kNr + c;
          const i64 kk = ks * 4 + d;
          panel[(ks * kNr + c) * 4 + d] =
              (j < nc && kk < kc) ? im2col_at(s, in, k0 + kk, n0 + j) : i8{0};
        }
  }
  tally_pack_im2col_gather(ctx, nc_pad * kc_pad);
  if (ctx) {
    ensure_pack_regions(ctx, in, s.batch * s.in_c * s.in_h * s.in_w,
                        "conv input", dst, nc_pad * kc_pad, "packed B block");
    touch_conv_gather(ctx, s, in, k0, kc, n0, nc);
    ctx->mem_range(dst, static_cast<u64>(nc_pad * kc_pad));
  }
  return SdotBPanels{dst, nc, kc, nc_pad, kc_pad};
}

void tally_pack_tbl_tables(armsim::Ctx* ctx, i64 tables) {
  if (!ctx) return;
  const u64 t = static_cast<u64>(tables);
  ctx->tally(armsim::Op::kDup, t * 2);     // broadcast both table operands
  ctx->tally(armsim::Op::kAdd, t * 2);     // combine the scaled base tables
  ctx->tally(armsim::Op::kSt1, t);         // store the 16-entry table
  ctx->tally(armsim::Op::kScalar, t * 2);  // operand fetch + address math
  ctx->tally(armsim::Op::kLoop, t / 4 + 1);
}

bool tbl_values_ternary(const i8* a, i64 m, i64 k) {
  for (i64 i = 0; i < m * k; ++i)
    if (a[i] < -1 || a[i] > 1) return false;
  return true;
}

i64 packed_tbl_idx_a_bytes(i64 m, i64 k, int group) {
  return round_up(m, kMr) * ceil_div(k, static_cast<i64>(group));
}

i64 packed_tbl_tables_a_bytes(i64 m, i64 k, int group) {
  return round_up(m, i64{4}) * ceil_div(k, static_cast<i64>(group)) * 16;
}

PackedTblA pack_tbl_a(const i8* a, i64 m, i64 k, int bits,
                      TblOrientation orient, armsim::Ctx* ctx) {
  PackedTblA pa;
  pa.orient = orient;
  pa.bits = bits;
  pa.m = m;
  pa.k = k;
  pa.ternary = bits == 2 || tbl_values_ternary(a, m, k);
  pa.group = tbl_group_for(orient, bits, pa.ternary);
  const bool pair = pa.group == kTblPairGroup;
  const i64 groups = pa.groups();
  const auto aval = [&](i64 row, i64 kk) -> i8 {
    return (row < m && kk < k) ? a[row * k + kk] : i8{0};
  };
  if (orient == TblOrientation::kActTables) {
    pa.m_pad = round_up(m, kMr);
    pa.idx.resize(static_cast<size_t>(pa.m_pad * groups));
    const u8 neutral =
        pair ? kTblNeutralPairIndex : tbl_generic_neutral_index(bits);
    for (i64 p = 0; p < pa.m_pad / kMr; ++p) {
      u8* panel = pa.idx.data() + p * groups * kMr;
      for (i64 gs = 0; gs < groups; ++gs)
        for (i64 r = 0; r < kMr; ++r) {
          const i64 row = p * kMr + r;
          u8 enc = neutral;
          if (row < m)
            enc = pair ? tbl_pair_index(aval(row, gs * 2), aval(row, gs * 2 + 1))
                       : tbl_value_index(aval(row, gs), bits);
          panel[gs * kMr + r] = enc;
        }
    }
    tally_pack_gather(ctx, pa.m_pad * k);
    if (ctx) {
      ensure_pack_regions(ctx, a, m * k, "pack TBL A source", pa.idx.data(),
                          static_cast<i64>(pa.idx.size()),
                          "packed TBL A indices");
      ctx->mem_range(a, static_cast<u64>(m * k));
      ctx->mem_range(pa.idx.data(), pa.idx.size());
    }
  } else {
    pa.m_pad = round_up(m, i64{4});
    pa.tables.resize(static_cast<size_t>(pa.m_pad * groups * 16));
    for (i64 p = 0; p < pa.m_pad / 4; ++p) {
      i8* panel = pa.tables.data() + p * groups * 4 * 16;
      for (i64 gs = 0; gs < groups; ++gs)
        for (i64 r = 0; r < 4; ++r) {
          const i64 row = p * 4 + r;
          const i8 w0 = aval(row, gs * pa.group);
          const i8 w1 = pair ? aval(row, gs * pa.group + 1) : i8{0};
          tbl_build_table(bits, pair, w0, w1, panel + (gs * 4 + r) * 16);
        }
    }
    tally_pack_tbl_tables(ctx, pa.m_pad * groups);
    if (ctx) {
      ensure_pack_regions(ctx, a, m * k, "pack TBL A source",
                          pa.tables.data(),
                          static_cast<i64>(pa.tables.size()),
                          "packed TBL A tables");
      ctx->mem_range(a, static_cast<u64>(m * k));
      ctx->mem_range(pa.tables.data(), pa.tables.size());
    }
  }
  return pa;
}

void pack_tbl_b_tables_block_into(armsim::Ctx* ctx, int bits, int group,
                                  const i8* b, i64 k, i64 n, i64 k0, i64 kc,
                                  i64 n0, i64 nc, i8* dst) {
  const bool pair = group == kTblPairGroup;
  const i64 nc_pad = round_up(nc, kNr);
  const i64 groups_c = ceil_div(kc, static_cast<i64>(group));
  const auto bval = [&](i64 kk, i64 j) -> i8 {
    return (kk < kc && n0 + j < n) ? b[(k0 + kk) * n + n0 + j] : i8{0};
  };
  for (i64 q = 0; q < nc_pad / kNr; ++q) {
    i8* panel = dst + q * groups_c * kNr * 16;
    for (i64 gs = 0; gs < groups_c; ++gs)
      for (i64 c = 0; c < kNr; ++c) {
        const i64 j = q * kNr + c;
        i8 b0 = 0, b1 = 0;
        if (j < nc) {
          b0 = bval(gs * group, j);
          if (pair) b1 = bval(gs * group + 1, j);
        }
        tbl_build_table(bits, pair, b0, b1, panel + (gs * kNr + c) * 16);
      }
  }
  const i64 bytes = nc_pad * groups_c * 16;
  tally_pack_tbl_tables(ctx, nc_pad * groups_c);
  if (ctx) {
    ensure_pack_regions(ctx, b, k * n, "pack B source", dst, bytes,
                        "packed B block");
    for (i64 kk = 0; kk < kc; ++kk)
      ctx->mem_range(b + (k0 + kk) * n + n0,
                     static_cast<u64>(std::min(nc, n - n0)));
    ctx->mem_range(dst, static_cast<u64>(bytes));
  }
}

void pack_tbl_b_tables_from_conv(armsim::Ctx* ctx, int bits, int group,
                                 const ConvShape& s, const i8* input, i64 k0,
                                 i64 kc, i64 n0, i64 nc, i8* dst) {
  const bool pair = group == kTblPairGroup;
  const i64 nc_pad = round_up(nc, kNr);
  const i64 groups_c = ceil_div(kc, static_cast<i64>(group));
  const auto bval = [&](i64 kk, i64 j) -> i8 {
    return kk < kc ? im2col_at(s, input, k0 + kk, n0 + j) : i8{0};
  };
  for (i64 q = 0; q < nc_pad / kNr; ++q) {
    i8* panel = dst + q * groups_c * kNr * 16;
    for (i64 gs = 0; gs < groups_c; ++gs)
      for (i64 c = 0; c < kNr; ++c) {
        const i64 j = q * kNr + c;
        i8 b0 = 0, b1 = 0;
        if (j < nc) {
          b0 = bval(gs * group, j);
          if (pair) b1 = bval(gs * group + 1, j);
        }
        tbl_build_table(bits, pair, b0, b1, panel + (gs * kNr + c) * 16);
      }
  }
  const i64 bytes = nc_pad * groups_c * 16;
  tally_pack_tbl_tables(ctx, nc_pad * groups_c);
  tally_pack_im2col_gather(ctx, nc_pad * kc);
  if (ctx) {
    ensure_pack_regions(ctx, input, s.batch * s.in_c * s.in_h * s.in_w,
                        "conv input", dst, bytes, "packed B block");
    touch_conv_gather(ctx, s, input, k0, kc, n0, nc);
    ctx->mem_range(dst, static_cast<u64>(bytes));
  }
}

void pack_tbl_b_idx_block_into(armsim::Ctx* ctx, int bits, int group,
                               const i8* b, i64 k, i64 n, i64 k0, i64 kc,
                               i64 n0, i64 nc, u8* dst) {
  const bool pair = group == kTblPairGroup;
  const i64 nc_pad = round_up(nc, i64{16});
  const i64 groups_c = ceil_div(kc, static_cast<i64>(group));
  const u8 neutral =
      pair ? kTblNeutralPairIndex : tbl_generic_neutral_index(bits);
  for (i64 q = 0; q < nc_pad / 16; ++q) {
    u8* panel = dst + q * groups_c * 16;
    for (i64 gs = 0; gs < groups_c; ++gs)
      for (i64 c = 0; c < 16; ++c) {
        const i64 j = q * 16 + c;
        u8 enc = neutral;
        if (j < nc && n0 + j < n) {
          const i64 kk = gs * group;
          const i8 v0 = b[(k0 + kk) * n + n0 + j];
          if (pair) {
            const i8 v1 =
                (kk + 1 < kc) ? b[(k0 + kk + 1) * n + n0 + j] : i8{0};
            enc = tbl_pair_index(v0, v1);
          } else {
            enc = tbl_value_index(v0, bits);
          }
        }
        panel[gs * 16 + c] = enc;
      }
  }
  tally_pack_gather(ctx, nc_pad * groups_c * group);
  if (ctx) {
    ensure_pack_regions(ctx, b, k * n, "pack B source", dst,
                        nc_pad * groups_c, "packed B block");
    for (i64 kk = 0; kk < kc; ++kk)
      ctx->mem_range(b + (k0 + kk) * n + n0,
                     static_cast<u64>(std::min(nc, n - n0)));
    ctx->mem_range(dst, static_cast<u64>(nc_pad * groups_c));
  }
}

void pack_tbl_b_idx_from_conv(armsim::Ctx* ctx, int bits, int group,
                              const ConvShape& s, const i8* input, i64 k0,
                              i64 kc, i64 n0, i64 nc, u8* dst) {
  const bool pair = group == kTblPairGroup;
  const i64 nc_pad = round_up(nc, i64{16});
  const i64 groups_c = ceil_div(kc, static_cast<i64>(group));
  const u8 neutral =
      pair ? kTblNeutralPairIndex : tbl_generic_neutral_index(bits);
  for (i64 q = 0; q < nc_pad / 16; ++q) {
    u8* panel = dst + q * groups_c * 16;
    for (i64 gs = 0; gs < groups_c; ++gs)
      for (i64 c = 0; c < 16; ++c) {
        const i64 j = q * 16 + c;
        u8 enc = neutral;
        if (j < nc) {
          const i64 kk = gs * group;
          const i8 v0 = im2col_at(s, input, k0 + kk, n0 + j);
          if (pair) {
            const i8 v1 =
                (kk + 1 < kc) ? im2col_at(s, input, k0 + kk + 1, n0 + j)
                              : i8{0};
            enc = tbl_pair_index(v0, v1);
          } else {
            enc = tbl_value_index(v0, bits);
          }
        }
        panel[gs * 16 + c] = enc;
      }
  }
  tally_pack_im2col_gather(ctx, nc_pad * groups_c * group);
  if (ctx) {
    ensure_pack_regions(ctx, input, s.batch * s.in_c * s.in_h * s.in_w,
                        "conv input", dst, nc_pad * groups_c,
                        "packed B block");
    touch_conv_gather(ctx, s, input, k0, kc, n0, nc);
    ctx->mem_range(dst, static_cast<u64>(nc_pad * groups_c));
  }
}

AlignedVector<i8> pack_b_colmajor(armsim::Ctx* ctx, const i8* b, i64 k, i64 n) {
  AlignedVector<i8> out(static_cast<size_t>(k * n));
  for (i64 j = 0; j < n; ++j)
    for (i64 kk = 0; kk < k; ++kk) out[j * k + kk] = b[kk * n + j];
  tally_pack_a(ctx, k * n);  // strided gather, same cost class as A pack
  if (ctx) {
    ensure_pack_regions(ctx, b, k * n, "pack B source", out.data(),
                        static_cast<i64>(out.size()), "B column-major copy");
    ctx->mem_range(b, static_cast<u64>(k * n));
    ctx->mem_range(out.data(), out.size());
  }
  return out;
}

}  // namespace lbc::armkern
