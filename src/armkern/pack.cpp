#include "armkern/pack.h"

#include "armsim/verifier.h"

namespace lbc::armkern {
namespace {

// Cost accounting for pack loops. Real NEON packing moves 16 bytes per
// vector op; the A pack additionally pays a strided-gather (transpose)
// overhead we charge as scalar ops per element group.
void tally_pack_a(armsim::Ctx* ctx, i64 elems) {
  if (!ctx) return;
  const u64 groups = static_cast<u64>(ceil_div(elems, 16));
  ctx->tally(armsim::Op::kLd1, groups);     // gather source rows
  ctx->tally(armsim::Op::kSt1, groups);     // store packed panel
  ctx->tally(armsim::Op::kScalar, groups * 2);  // transpose/index math
  ctx->tally(armsim::Op::kLoop, groups / 4 + 1);
}

void tally_pack_b(armsim::Ctx* ctx, i64 elems) {
  if (!ctx) return;
  const u64 groups = static_cast<u64>(ceil_div(elems, 16));
  ctx->tally(armsim::Op::kLd1, groups);
  ctx->tally(armsim::Op::kSt1, groups);
  ctx->tally(armsim::Op::kLoop, groups / 4 + 1);
}

// Under checked execution the pack's bulk cache traffic must land inside
// registered regions. ensure_region is a no-op when the driver already
// registered a (ranged) region covering the span, so driver bounds win.
void ensure_pack_regions(armsim::Ctx* ctx, const void* src, i64 src_bytes,
                         const char* src_name, const void* dst, i64 dst_bytes,
                         const char* dst_name) {
  if (ctx == nullptr || ctx->verifier == nullptr) return;
  ctx->verifier->ensure_region(src, src_bytes, src_name);
  ctx->verifier->ensure_region(dst, dst_bytes, dst_name);
}

}  // namespace

i64 packed_a_bytes(i64 m, i64 k) { return round_up(m, kMr) * k; }
i64 packed_b_bytes(i64 k, i64 n) { return round_up(n, kNr) * k; }

APanels pack_a_into(armsim::Ctx* ctx, const i8* a, i64 m, i64 k, i8* dst) {
  const i64 m_pad = round_up(m, kMr);
  for (i64 p = 0; p < m_pad / kMr; ++p) {
    i8* panel = dst + p * k * kMr;
    for (i64 kk = 0; kk < k; ++kk)
      for (i64 r = 0; r < kMr; ++r) {
        const i64 row = p * kMr + r;
        panel[kk * kMr + r] = (row < m) ? a[row * k + kk] : i8{0};
      }
  }
  tally_pack_a(ctx, m_pad * k);
  if (ctx) {
    ensure_pack_regions(ctx, a, m * k, "pack A source", dst, m_pad * k,
                        "packed A panels");
    ctx->mem_range(a, static_cast<u64>(m * k));
    ctx->mem_range(dst, static_cast<u64>(m_pad * k));
  }
  return APanels{dst, m, k, m_pad};
}

BPanels pack_b_into(armsim::Ctx* ctx, const i8* b, i64 k, i64 n, i8* dst) {
  const i64 n_pad = round_up(n, kNr);
  for (i64 q = 0; q < n_pad / kNr; ++q) {
    i8* panel = dst + q * k * kNr;
    for (i64 kk = 0; kk < k; ++kk)
      for (i64 c = 0; c < kNr; ++c) {
        const i64 col = q * kNr + c;
        panel[kk * kNr + c] = (col < n) ? b[kk * n + col] : i8{0};
      }
  }
  tally_pack_b(ctx, n_pad * k);
  if (ctx) {
    ensure_pack_regions(ctx, b, k * n, "pack B source", dst, n_pad * k,
                        "packed B panels");
    ctx->mem_range(b, static_cast<u64>(k * n));
    ctx->mem_range(dst, static_cast<u64>(n_pad * k));
  }
  return BPanels{dst, k, n, n_pad};
}

PackedA pack_a(armsim::Ctx* ctx, const i8* a, i64 m, i64 k) {
  PackedA pa;
  pa.m = m;
  pa.k = k;
  pa.m_pad = round_up(m, kMr);
  pa.data.resize(static_cast<size_t>(pa.m_pad * k));
  pack_a_into(ctx, a, m, k, pa.data.data());
  return pa;
}

PackedB pack_b(armsim::Ctx* ctx, const i8* b, i64 k, i64 n) {
  PackedB pb;
  pb.k = k;
  pb.n = n;
  pb.n_pad = round_up(n, kNr);
  pb.data.resize(static_cast<size_t>(pb.n_pad * k));
  pack_b_into(ctx, b, k, n, pb.data.data());
  return pb;
}

i64 packed_sdot_a_bytes(i64 m, i64 k) {
  return round_up(m, kMr) * round_up(k, 4);
}
i64 packed_sdot_b_bytes(i64 k, i64 n) {
  return round_up(n, kNr) * round_up(k, 4);
}

PackedSdotA pack_sdot_a(const i8* a, i64 m, i64 k, armsim::Ctx* ctx) {
  PackedSdotA pa;
  pa.m = m;
  pa.k = k;
  pa.m_pad = round_up(m, kMr);
  pa.k_pad = round_up(k, 4);
  pa.data.resize(static_cast<size_t>(pa.m_pad * pa.k_pad));
  const i64 ksteps = pa.k_pad / 4;
  for (i64 p = 0; p < pa.panels(); ++p) {
    i8* dst = pa.data.data() + p * pa.k_pad * kMr;
    for (i64 ks = 0; ks < ksteps; ++ks)
      for (i64 r = 0; r < kMr; ++r)
        for (i64 d = 0; d < 4; ++d) {
          const i64 row = p * kMr + r;
          const i64 kk = ks * 4 + d;
          dst[(ks * kMr + r) * 4 + d] =
              (row < m && kk < k) ? a[row * k + kk] : i8{0};
        }
  }
  tally_pack_a(ctx, pa.m_pad * pa.k_pad);
  if (ctx) {
    ensure_pack_regions(ctx, a, m * k, "pack SDOT A source", pa.data.data(),
                        static_cast<i64>(pa.data.size()), "packed SDOT A");
    ctx->mem_range(a, static_cast<u64>(m * k));
    ctx->mem_range(pa.data.data(), pa.data.size());
  }
  return pa;
}

SdotBPanels pack_sdot_b_into(armsim::Ctx* ctx, const i8* b, i64 k, i64 n,
                             i8* dst) {
  const i64 n_pad = round_up(n, kNr);
  const i64 k_pad = round_up(k, 4);
  const i64 ksteps = k_pad / 4;
  for (i64 q = 0; q < n_pad / kNr; ++q) {
    i8* panel = dst + q * k_pad * kNr;
    for (i64 ks = 0; ks < ksteps; ++ks)
      for (i64 c = 0; c < kNr; ++c)
        for (i64 d = 0; d < 4; ++d) {
          const i64 col = q * kNr + c;
          const i64 kk = ks * 4 + d;
          panel[(ks * kNr + c) * 4 + d] =
              (col < n && kk < k) ? b[kk * n + col] : i8{0};
        }
  }
  // The B interleave is a strided gather — same cost class as an A pack.
  tally_pack_a(ctx, n_pad * k_pad);
  if (ctx) {
    ensure_pack_regions(ctx, b, k * n, "pack SDOT B source", dst,
                        n_pad * k_pad, "packed SDOT B");
    ctx->mem_range(b, static_cast<u64>(k * n));
    ctx->mem_range(dst, static_cast<u64>(n_pad * k_pad));
  }
  return SdotBPanels{dst, n, k, n_pad, k_pad};
}

PackedSdot pack_sdot(armsim::Ctx* ctx, const i8* a, const i8* b, i64 m, i64 n,
                     i64 k) {
  PackedSdot ps;
  ps.m = m;
  ps.n = n;
  ps.k = k;
  ps.m_pad = round_up(m, kMr);
  ps.n_pad = round_up(n, kNr);
  ps.k_pad = round_up(k, 4);
  // A pack is offline (weights); B pack is tallied by pack_sdot_b_into.
  ps.a = std::move(pack_sdot_a(a, m, k).data);
  ps.b.resize(static_cast<size_t>(ps.n_pad * ps.k_pad));
  pack_sdot_b_into(ctx, b, k, n, ps.b.data());
  return ps;
}

AlignedVector<i8> pack_b_colmajor(armsim::Ctx* ctx, const i8* b, i64 k, i64 n) {
  AlignedVector<i8> out(static_cast<size_t>(k * n));
  for (i64 j = 0; j < n; ++j)
    for (i64 kk = 0; kk < k; ++kk) out[j * k + kk] = b[kk * n + j];
  tally_pack_a(ctx, k * n);  // strided gather, same cost class as A pack
  if (ctx) {
    ensure_pack_regions(ctx, b, k * n, "pack B source", out.data(),
                        static_cast<i64>(out.size()), "B column-major copy");
    ctx->mem_range(b, static_cast<u64>(k * n));
    ctx->mem_range(out.data(), out.size());
  }
  return out;
}

}  // namespace lbc::armkern
