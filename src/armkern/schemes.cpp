#include "armkern/schemes.h"

namespace lbc::armkern {
// Compile-time checks that the safe-ratio formula reproduces the paper's
// quoted SMLAL:SADDW ratios where the adjusted range defines them
// (Sec. 3.3: "... 8/1 and 2/1 ... for 7 and 8-bit").
static_assert(smlal_safe_ratio(8) == 2);
static_assert(smlal_safe_ratio(7) == 8);
// For 4-6 bit the paper quotes the conservative power-of-two bounds
// (511/127/31); our adjusted-range bounds are looser, and both dominate
// the actual flush interval (the unrolling factor <= 32).
static_assert(smlal_safe_ratio(6) >= 31);
static_assert(smlal_safe_ratio(5) >= 127);
static_assert(smlal_safe_ratio(4) >= 511);

void tbl_build_table(int bits, bool ternary_pairs, i8 b0, i8 b1, i8 out[16]) {
  const i32 q = qmax_for_bits(bits);
  for (int idx = 0; idx < 16; ++idx) {
    i32 entry = 0;
    if (ternary_pairs) {
      const i32 d0 = idx / 4 - 1;  // decode of tbl_pair_index
      const i32 d1 = idx % 4 - 1;
      if (d0 <= 1 && d1 <= 1 && idx % 4 != 3)
        entry = d0 * static_cast<i32>(b0) + d1 * static_cast<i32>(b1);
    } else {
      if (idx <= 2 * q) entry = (idx - q) * static_cast<i32>(b0);
    }
    out[idx] = static_cast<i8>(entry);
  }
}
}  // namespace lbc::armkern
