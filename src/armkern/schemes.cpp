#include "armkern/schemes.h"

namespace lbc::armkern {
// Compile-time checks that the safe-ratio formula reproduces the paper's
// quoted SMLAL:SADDW ratios where the adjusted range defines them
// (Sec. 3.3: "... 8/1 and 2/1 ... for 7 and 8-bit").
static_assert(smlal_safe_ratio(8) == 2);
static_assert(smlal_safe_ratio(7) == 8);
// For 4-6 bit the paper quotes the conservative power-of-two bounds
// (511/127/31); our adjusted-range bounds are looser, and both dominate
// the actual flush interval (the unrolling factor <= 32).
static_assert(smlal_safe_ratio(6) >= 31);
static_assert(smlal_safe_ratio(5) >= 127);
static_assert(smlal_safe_ratio(4) >= 511);
}  // namespace lbc::armkern
