#include "armkern/verify_kernels.h"

#include <sstream>

#include "common/rng.h"
#include "common/workspace.h"

namespace lbc::armkern {

namespace {

// Representative geometries: a classic 3x3 s1 p1 block (winograd-eligible),
// a 1x1 pointwise layer, and a strided 5x5 stem. Small enough that the full
// sweep stays fast, large enough that every kernel runs multiple panels and
// hits the edge-clipping paths.
std::vector<ConvShape> sweep_shapes() {
  std::vector<ConvShape> shapes;
  {
    ConvShape s;
    s.name = "block3x3";
    s.in_c = 8, s.in_h = 12, s.in_w = 12;
    s.out_c = 20;
    s.kernel = 3, s.stride = 1, s.pad = 1;
    shapes.push_back(s);
  }
  {
    ConvShape s;
    s.name = "pointwise";
    s.in_c = 16, s.in_h = 10, s.in_w = 10;
    s.out_c = 17;
    s.kernel = 1, s.stride = 1, s.pad = 0;
    shapes.push_back(s);
  }
  {
    ConvShape s;
    s.name = "stem5x5";
    s.in_c = 3, s.in_h = 16, s.in_w = 16;
    s.out_c = 9;
    s.kernel = 5, s.stride = 2, s.pad = 2;
    shapes.push_back(s);
  }
  return shapes;
}

// (kernel, algo) combinations worth sweeping per bit width. Ineligible
// requests would just silently degrade along the driver's fallback ladder,
// re-verifying a rung already covered — skip those up front.
struct Combo {
  ArmKernel kernel;
  ConvAlgo algo;
  BlockingPolicy blocking = BlockingPolicy::kAuto;
};

std::vector<Combo> combos_for_bits(int bits) {
  std::vector<Combo> cs;
  // The GEMM combos run cache-blocked with fused im2col packing (kAuto,
  // the default) AND as the legacy unblocked sweep (kOff) — both schedules
  // must hold every kernel invariant.
  cs.push_back({ArmKernel::kOursGemm, ConvAlgo::kGemm});
  cs.push_back({ArmKernel::kOursGemm, ConvAlgo::kGemm, BlockingPolicy::kOff});
  cs.push_back({ArmKernel::kOursGemm, ConvAlgo::kDirect});
  cs.push_back({ArmKernel::kOursGemm, ConvAlgo::kReference});
  if (bits >= 4 && bits <= 6)  // winograd bit-range rung of the ladder
    cs.push_back({ArmKernel::kOursGemm, ConvAlgo::kWinograd});
  if (bitserial_eligible_for(bits))
    cs.push_back({ArmKernel::kOursGemm, ConvAlgo::kBitserial});
  cs.push_back({ArmKernel::kNcnn, ConvAlgo::kGemm});
  cs.push_back({ArmKernel::kNcnn, ConvAlgo::kGemm, BlockingPolicy::kOff});
  cs.push_back({ArmKernel::kTraditional, ConvAlgo::kGemm});
  if (sdot_eligible_for(bits)) {
    cs.push_back({ArmKernel::kSdotExt, ConvAlgo::kGemm});
    cs.push_back(
        {ArmKernel::kSdotExt, ConvAlgo::kGemm, BlockingPolicy::kOff});
  }
  // TBL ships blocked-only (kOff degrades to kOursGemm at plan time, a
  // rung already swept above), so only the kAuto schedule is new coverage.
  if (tbl_eligible_for(bits))
    cs.push_back({ArmKernel::kTblGemm, ConvAlgo::kGemm});
  return cs;
}

}  // namespace

int kernel_verify_expected_entries() {
  const std::vector<ConvShape> shapes = sweep_shapes();
  int n = 0;
  for (int bits = 2; bits <= 8; ++bits)
    for (const Combo& c : combos_for_bits(bits))
      for (const ConvShape& s : shapes)
        if (!(c.algo == ConvAlgo::kWinograd && !s.winograd_eligible())) ++n;
  return n;
}

std::string KernelVerifyReport::failure_summary() const {
  std::ostringstream os;
  for (const KernelVerifyEntry& e : entries) {
    if (e.status.ok()) continue;
    os << "bits=" << e.bits << " kernel=" << static_cast<int>(e.kernel)
       << " algo=" << algo_name(e.algo) << " (ran " << e.executed_algo
       << ") shape=" << e.shape << ": " << e.status.to_string() << "\n";
  }
  return os.str();
}

KernelVerifyReport verify_all_kernels() {
  KernelVerifyReport report;
  const std::vector<ConvShape> shapes = sweep_shapes();
  Workspace ws;
  u64 seed = 0x5eed;
  for (int bits = 2; bits <= 8; ++bits) {
    for (const Combo& combo : combos_for_bits(bits)) {
      for (const ConvShape& s : shapes) {
        // Winograd only runs on 3x3 stride-1 — sweeping it over the other
        // shapes would just re-verify the GEMM fallback rung.
        if (combo.algo == ConvAlgo::kWinograd && !s.winograd_eligible())
          continue;
        // Adversarial inputs: alternating +/- qmax maximizes accumulator
        // growth, the exact case the flush-interval analysis must survive.
        const Tensor<i8> input = extreme_qtensor(
            Shape4{s.batch, s.in_c, s.in_h, s.in_w}, bits, ++seed);
        const Tensor<i8> weight = extreme_qtensor(
            Shape4{s.out_c, s.in_c, s.kernel, s.kernel}, bits, ++seed);

        ArmConvOptions opt;
        opt.bits = bits;
        opt.algo = combo.algo;
        opt.kernel = combo.kernel;
        opt.blocking = combo.blocking;
        opt.verify = true;

        KernelVerifyEntry entry;
        entry.bits = bits;
        entry.kernel = combo.kernel;
        entry.algo = combo.algo;
        entry.shape = describe(s);

        StatusOr<ArmConvResult> r = [&]() -> StatusOr<ArmConvResult> {
          LBC_ASSIGN_OR_RETURN(ArmConvPlan plan, plan_conv(s, weight, opt));
          return execute_conv(plan, input, ws);
        }();
        if (r.ok()) {
          entry.executed_algo = r.value().executed_algo;
          entry.status = Status();
        } else {
          entry.status = r.status();
        }
        if (!entry.status.ok()) ++report.failures;
        report.entries.push_back(std::move(entry));
      }
    }
  }
  return report;
}

}  // namespace lbc::armkern
