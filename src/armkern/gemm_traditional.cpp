#include "armkern/gemm_lowbit.h"

#include <vector>

#include "common/align.h"

#include "armkern/micro.h"
#include "armkern/pack.h"

namespace lbc::armkern {

using namespace armsim;

// Traditional GEMM (paper Fig. 1a): every output element is an inner
// product computed from one vector of A's row and one vector of B's column,
// so each 16-MAC step costs two loads (beta_1 = 2 in Eq. 1). Compare with
// the re-designed GEMM where one LD1 + one LD4R feed 64 MACs (Eq. 3).
void gemm_traditional(Ctx& ctx, int bits, const i8* a, const i8* b, i32* c,
                      i64 m, i64 n, i64 k) {
  const i64 k16 = round_up(k, 16);

  // Pad A rows into contiguous 16-multiples; transpose B column-major.
  AlignedVector<i8> a_pad(static_cast<size_t>(m * k16), 0);
  for (i64 i = 0; i < m; ++i)
    for (i64 kk = 0; kk < k; ++kk) a_pad[i * k16 + kk] = a[i * k + kk];
  AlignedVector<i8> b_cm(static_cast<size_t>(n * k16), 0);
  for (i64 j = 0; j < n; ++j)
    for (i64 kk = 0; kk < k; ++kk) b_cm[j * k16 + kk] = b[kk * n + j];

  const int flush = (bits <= 3) ? mla_flush_interval(bits) * 4
                                : smlal_flush_interval(bits);
  // Checked-execution contract covers the whole kernel: its packed copies
  // are internal, so their regions and value ranges are declared here.
  const VerifyScope vs(ctx, KernelSpec{.name = "gemm_traditional",
                                       .acc16_flush = flush,
                                       .cal_ld_min = 0.9,
                                       .cal_ld_max = 1.1});
  if (ctx.verifier != nullptr) {
    const i32 q = qmax_for_bits(bits);
    ctx.verifier->add_region(a_pad.data(), static_cast<i64>(a_pad.size()),
                             "gemm_traditional a_pad", -q, q);
    ctx.verifier->add_region(b_cm.data(), static_cast<i64>(b_cm.size()),
                             "gemm_traditional b_cm", -q, q);
  }
  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < n; ++j) {
      int16x8 acc16;
      int32x4 acc32;
      movi_zero(ctx, acc16);
      movi_zero(ctx, acc32);
      i32 result = 0;
      int since_flush = 0;
      for (i64 kk = 0; kk < k16; kk += 16) {
        int8x16 av, bv;
        ld1_s8(ctx, a_pad.data() + i * k16 + kk, av);
        ld1_s8(ctx, b_cm.data() + j * k16 + kk, bv);
        smlal_s8(ctx, acc16, av, bv);
        smlal2_s8(ctx, acc16, av, bv);
        ctx.tally(Op::kLoop);
        // Each lane gained two products this step (SMLAL + SMLAL2 halves
        // land in the same 8 lanes? No: SMLAL2 uses the high bytes but the
        // same 16-bit lanes — two products per lane per step).
        since_flush += 2;
        if (since_flush + 2 > flush) {
          saddw_s16(ctx, acc32, acc16);
          saddw2_s16(ctx, acc32, acc16);
          movi_zero(ctx, acc16);
          since_flush = 0;
        }
      }
      if (since_flush > 0) {
        saddw_s16(ctx, acc32, acc16);
        saddw2_s16(ctx, acc32, acc16);
      }
      // Reduced-sum epilogue (the paper's delta term in Eq. 2).
      result = addv_s32(ctx, acc32);
      ctx.tally(Op::kScalar);  // scalar store of one element
      c[i * n + j] = result;
    }
  }
}

}  // namespace lbc::armkern
