#include "armkern/tile_search.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "armkern/micro.h"
#include "armsim/cache.h"
#include "armsim/cost_model.h"
#include "common/status.h"

namespace lbc::armkern {

using namespace armsim;

namespace {

std::mutex g_mu;
TileSearchStats g_stats;
std::map<std::string, GemmBlocking> g_winners;
// Per-(geometry, kc, nc, layout) replay result, shared across bits and
// schemes: the SMLAL/MLA/ncnn kernels issue an identical load pattern.
struct ReplayMisses {
  u64 l1 = 0, l2 = 0;
};
std::map<std::string, ReplayMisses> g_replays;

std::string geometry_key(const ConvShape& s) {
  std::ostringstream os;
  os << s.batch << 'x' << s.in_c << 'x' << s.in_h << 'x' << s.in_w << ">"
     << s.out_c << "k" << s.kernel << "s" << s.stride << "p" << s.pad;
  return os.str();
}


// Instruction mix of ONE micro-kernel call at depth kc, measured by
// running the emulated kernel on dummy zeroed buffers with the cache
// model off (issue cost only; stalls come from the replay). For the TBL
// kernel `tbl_groups` is the per-call group-step count and `tbl_group` the
// depth positions per group (both orientations issue the identical
// pattern; the group size sets the byte-lane flush cadence).
Counters probe_micro(ArmKernel kernel, int bits, i64 kc, i64 kstride,
                     i64 tbl_groups = 0, int tbl_group = 0) {
  AlignedVector<i8> a(static_cast<size_t>(std::max<i64>(kstride, 1) * kMr));
  AlignedVector<i8> b(static_cast<size_t>(std::max<i64>(kstride, 1) * kNr));
  alignas(64) i32 tile[kMr * kNr];
  Ctx ctx;
  ctx.model_cache = false;
  switch (kernel) {
    case ArmKernel::kOursGemm:
      if (bits <= 3)
        micro_mla_16x4(ctx, a.data(), b.data(), kc, mla_flush_interval(bits),
                       tile);
      else
        micro_smlal_16x4(ctx, a.data(), b.data(), kc,
                         smlal_flush_interval(bits), tile);
      break;
    case ArmKernel::kNcnn:
      micro_ncnn_16x4(ctx, a.data(), b.data(), kc, tile);
      break;
    case ArmKernel::kSdotExt:
      micro_sdot_16x4(ctx, a.data(), b.data(), kstride, tile);
      break;
    case ArmKernel::kTblGemm: {
      const i64 g = std::max<i64>(tbl_groups, 1);
      AlignedVector<u8> idx(static_cast<size_t>(g * 16));  // index 0: valid
      AlignedVector<i8> tbl(static_cast<size_t>(g * 64));
      micro_tbl_16x4(ctx, idx.data(), tbl.data(), g,
                     tbl_flush_interval(bits, tbl_group == kTblPairGroup),
                     tile);
      break;
    }
    case ArmKernel::kTraditional:
      break;  // never blocked
  }
  return ctx.counts;
}

// The search prices TBL layouts without seeing weight values, so the pair
// group assumes non-ternary 3-bit weights (the conservative mode; 2-bit is
// always paired). Pack-time detection can only improve on the priced plan.
BlockedLayout layout_for(i64 m, i64 n, i64 k, const GemmBlocking& blocking,
                         ArmKernel kernel, int bits) {
  const bool sdot = kernel == ArmKernel::kSdotExt;
  if (kernel == ArmKernel::kTblGemm) {
    const TblOrientation o = choose_tbl_orientation(m, n, k, bits, false);
    return blocked_layout(m, n, k, blocking, sdot,
                          tbl_group_for(o, bits, false), o);
  }
  return blocked_layout(m, n, k, blocking, sdot);
}

// Line-granular trace replay of the blocked schedule into a fresh
// CacheSim. Synthetic disjoint region bases stand in for the real
// buffers; the model only keys on line identity (cache.h), so the miss
// counts match what the emulated run would see for the same schedule.
struct Replay {
  CacheSim sim;

  void touch(u64 addr, u64 bytes) {
    if (bytes == 0) return;
    const u64 first = addr / CacheSim::kLineBytes;
    const u64 last = (addr + bytes - 1) / CacheSim::kLineBytes;
    for (u64 ln = first; ln <= last; ++ln)
      sim.access(reinterpret_cast<const void*>(ln * CacheSim::kLineBytes), 1);
  }
};

constexpr u64 kBaseA = u64{1} << 40;
constexpr u64 kBaseB = u64{2} << 40;
constexpr u64 kBaseC = u64{3} << 40;
constexpr u64 kBaseIn = u64{4} << 40;
// The driver's per-thread 16x4 i32 micro-kernel scratch tile. Only 1 KB,
// but it is written through ST1 on every micro call, so it permanently
// holds 16 L1 lines — near the L1 capacity cliff that residency decides
// whether a schedule's table/panel set survives between row panels, and
// omitting it made the replay optimistic exactly where reality thrashes.
constexpr u64 kBaseTile = u64{5} << 40;
// Per-layer spacing inside a region for the chained graph replay: layers
// get disjoint weight/activation sub-regions 16 GiB apart.
constexpr u64 kLayerStride = u64{1} << 34;

// Synthetic buffer bases one schedule replay runs against. The chained
// graph replay points layer i's `in` at layer i-1's `out` (the fused
// epilogue's i8 activations) and shares `b`/`c` across layers (the pack
// block and C scratch are recycled buffers).
struct ReplayBases {
  u64 a = kBaseA;
  u64 b = kBaseB;
  u64 c = kBaseC;
  u64 in = kBaseIn;
  u64 out = 0;  ///< fused-epilogue i8 output; 0 = not modeled
};

// Touch the input spans the fused gather of block (k0..k0+kc) x
// (n0..n0+nc) reads — same span logic as pack.cpp's touch_conv_gather,
// against the synthetic input base.
void replay_gather(Replay& r, const ConvShape& s, u64 base_in, i64 k0, i64 kc,
                   i64 n0, i64 nc) {
  const i64 ohw = s.out_h() * s.out_w();
  for (i64 kk = 0; kk < kc; ++kk) {
    const i64 kg = k0 + kk;
    const i64 ksq = s.kernel * s.kernel;
    const i64 ic = kg / ksq;
    const i64 kh = (kg / s.kernel) % s.kernel;
    const i64 kw = kg % s.kernel;
    i64 col = n0;
    while (col < n0 + nc) {
      const i64 b = col / ohw;
      const i64 rem = col % ohw;
      const i64 oh = rem / s.out_w();
      const i64 ow0 = rem % s.out_w();
      const i64 ow1 = std::min<i64>(s.out_w() - 1, ow0 + (n0 + nc - 1 - col));
      const i64 ih = oh * s.stride + kh - s.pad;
      if (ih >= 0 && ih < s.in_h) {
        const i64 iw_lo = std::max<i64>(ow0 * s.stride + kw - s.pad, 0);
        const i64 iw_hi =
            std::min<i64>(ow1 * s.stride + kw - s.pad, s.in_w - 1);
        if (iw_lo <= iw_hi)
          r.touch(base_in + static_cast<u64>(
                                ((b * s.in_c + ic) * s.in_h + ih) * s.in_w +
                                iw_lo),
                  static_cast<u64>(iw_hi - iw_lo + 1));
      }
      col += ow1 - ow0 + 1;
    }
  }
}

// Simulate the first one or two jc column blocks and extrapolate: block 0
// carries the cold misses, block 1 is the steady state repeated for every
// remaining band. `r` may carry state from earlier layers (the chained
// graph replay); the per-block deltas are measured against it.
ReplayMisses replay_schedule_at(Replay& r, const ConvShape& s,
                                const BlockedLayout& lay,
                                const ReplayBases& bases) {
  const bool tbl_wt =
      lay.tbl() && lay.tbl_orient == TblOrientation::kWeightTables;
  const i64 k_groups_total =
      lay.tbl() ? ceil_div(lay.k, static_cast<i64>(lay.tbl_group)) : 0;
  // Offline-A stride per panel: plain/SDOT i8 panels, TBL index panels
  // (16 bytes per group step) or TBL weight tables (64 per row-group step).
  const i64 a_panel_stride =
      lay.tbl() ? k_groups_total * (tbl_wt ? 64 : 16)
                : (lay.sdot ? round_up(lay.k, 4) : lay.k) * kMr;
  const i64 sim_blocks = std::min<i64>(2, lay.n_blocks);
  u64 l1_per_block[2] = {0, 0};
  u64 l2_per_block[2] = {0, 0};
  for (i64 jc = 0; jc < sim_blocks; ++jc) {
    const u64 l1_before = r.sim.stats().l1_misses;
    const u64 l2_before = r.sim.stats().l2_misses;
    const i64 n0 = jc * lay.blk.nc;
    const i64 nc = lay.nc_eff(jc);
    const i64 nc_pad = round_up(nc, kNr);
    for (i64 kcb = 0; kcb < lay.k_blocks; ++kcb) {
      const i64 k0 = kcb * lay.blk.kc;
      const i64 kstride = lay.k_stride(kcb);
      replay_gather(r, s, bases.in, k0, lay.kc_eff(kcb), n0, nc);
      if (tbl_wt) {
        const i64 groups_c = lay.tbl_groups(kcb);
        const i64 nc_pad16 = round_up(nc, i64{16});
        r.touch(bases.b, static_cast<u64>(nc_pad16 * kstride));
        for (i64 p = 0; p < ceil_div(lay.m, i64{4}); ++p) {
          const u64 a_slice =
              bases.a + static_cast<u64>(p * a_panel_stride +
                                         (k0 / lay.tbl_group) * 64);
          for (i64 q = 0; q < nc_pad16 / 16; ++q) {
            const u64 idx_panel = bases.b + static_cast<u64>(q * kstride * 16);
            // Per group step: one 64-byte table line, one 16-byte index
            // vector (a line per four steps).
            for (i64 gs = 0; gs < groups_c; ++gs) {
              r.touch(a_slice + static_cast<u64>(gs * 64),
                      CacheSim::kLineBytes);
              if (gs % 4 == 0)
                r.touch(idx_panel + static_cast<u64>(gs * 16),
                        CacheSim::kLineBytes);
            }
            r.touch(kBaseTile, kMr * kNr * 4);  // micro ST1s into the tile
            const i64 row0 = p * 4;
            const i64 col0 = n0 + q * 16;
            const i64 rows = std::min<i64>(4, lay.m - row0);
            const i64 cols = std::min<i64>(16, lay.n - col0);
            for (i64 ii = 0; ii < rows; ++ii) {
              r.touch(bases.c +
                          static_cast<u64>(((row0 + ii) * lay.n + col0) * 4),
                      static_cast<u64>(cols) * 4);
              if (kcb == lay.k_blocks - 1 && bases.out != 0)
                r.touch(
                    bases.out + static_cast<u64>((row0 + ii) * lay.n + col0),
                    static_cast<u64>(cols));
            }
          }
        }
        continue;
      }
      r.touch(bases.b, static_cast<u64>(nc_pad * kstride));
      for (i64 p = 0; p < lay.m_panels(); ++p) {
        const u64 a_slice =
            bases.a +
            static_cast<u64>(p * a_panel_stride +
                             (lay.tbl() ? (k0 / lay.tbl_group) * 16
                                        : k0 * kMr));
        for (i64 q = 0; q < nc_pad / kNr; ++q) {
          const u64 b_panel = bases.b + static_cast<u64>(q * kstride * kNr);
          if (lay.tbl()) {
            // kActTables: one 64-byte table line per group step, one
            // 16-byte weight-index vector (a line per four steps).
            const i64 groups_c = lay.tbl_groups(kcb);
            for (i64 gs = 0; gs < groups_c; ++gs) {
              r.touch(b_panel + static_cast<u64>(gs * 64),
                      CacheSim::kLineBytes);
              if (gs % 4 == 0)
                r.touch(a_slice + static_cast<u64>(gs * 16),
                        CacheSim::kLineBytes);
            }
          } else {
            // The micro kernel's load pattern at line granularity: one A
            // line per four depth steps, one B line per sixteen.
            for (i64 kk = 0; kk < kstride; kk += 4) {
              r.touch(a_slice + static_cast<u64>(kk * kMr),
                      CacheSim::kLineBytes);
              if (kk % 16 == 0)
                r.touch(b_panel + static_cast<u64>(kk * kNr),
                        CacheSim::kLineBytes);
            }
          }
          r.touch(kBaseTile, kMr * kNr * 4);  // micro ST1s into the tile
          const i64 row0 = p * kMr;
          const i64 col0 = n0 + q * kNr;
          const i64 rows = std::min<i64>(kMr, lay.m - row0);
          const i64 cols = std::min<i64>(kNr, lay.n - col0);
          for (i64 ii = 0; ii < rows; ++ii) {
            r.touch(bases.c + static_cast<u64>(((row0 + ii) * lay.n + col0) * 4),
                    static_cast<u64>(cols) * 4);
            // Fused epilogue: the final-Kc writeback also stores the
            // requantized i8 row segment — those lines are what the next
            // layer's gather finds warm.
            if (kcb == lay.k_blocks - 1 && bases.out != 0)
              r.touch(bases.out + static_cast<u64>((row0 + ii) * lay.n + col0),
                      static_cast<u64>(cols));
          }
        }
      }
    }
    l1_per_block[jc] = r.sim.stats().l1_misses - l1_before;
    l2_per_block[jc] = r.sim.stats().l2_misses - l2_before;
  }
  ReplayMisses misses;
  if (lay.n_blocks <= 1) {
    misses.l1 = l1_per_block[0];
    misses.l2 = l2_per_block[0];
  } else {
    misses.l1 =
        l1_per_block[0] + l1_per_block[1] * static_cast<u64>(lay.n_blocks - 1);
    misses.l2 =
        l2_per_block[0] + l2_per_block[1] * static_cast<u64>(lay.n_blocks - 1);
  }
  return misses;
}

ReplayMisses replay_schedule(const ConvShape& s, const BlockedLayout& lay) {
  Replay r;
  return replay_schedule_at(r, s, lay, ReplayBases{});
}

ReplayMisses replay_memoized(const ConvShape& s, const BlockedLayout& lay) {
  std::ostringstream os;
  os << geometry_key(s) << "|kc" << lay.blk.kc << "nc" << lay.blk.nc
     << (lay.sdot ? "|sdot" : "");
  if (lay.tbl())
    os << (lay.tbl_orient == TblOrientation::kActTables ? "|tblA" : "|tblB")
       << lay.tbl_group;
  const std::string key = os.str();
  const auto it = g_replays.find(key);
  if (it != g_replays.end()) return it->second;
  const ReplayMisses m = replay_schedule(s, lay);
  g_replays.emplace(key, m);
  return m;
}

// Issue-side cost of one layer's blocked schedule: micro-kernel probes
// scaled by call counts, the fused-gather pack tallies, and the C
// accumulate re-loads. Misses are NOT included — the caller adds them from
// a (cold or chained) replay. `fused_epilogue` additionally charges the
// blocked driver's in-cache requantize hook (2 scalar ops per element +
// one narrow store per final row segment).
Counters issue_counts(const ConvShape& s, int bits, ArmKernel kernel,
                      const BlockedLayout& lay, bool fused_epilogue) {
  const bool sdot = kernel == ArmKernel::kSdotExt;
  const bool tbl_wt =
      lay.tbl() && lay.tbl_orient == TblOrientation::kWeightTables;
  const i64 m = s.gemm_m();

  Counters counts;
  Ctx tally_ctx;
  tally_ctx.model_cache = false;
  // Micro columns across all jc bands: 4-wide for the column-major tile,
  // 16-wide for the TBL weight-tables row-major tile (per-band padding).
  i64 q_total = lay.n_pad / kNr;
  if (tbl_wt) {
    q_total = 0;
    for (i64 jc = 0; jc < lay.n_blocks; ++jc)
      q_total += round_up(lay.nc_eff(jc), i64{16}) / 16;
  }
  const i64 row_panels = tbl_wt ? ceil_div(lay.m, i64{4}) : lay.m_panels();
  // Distinct Kc depths: every non-final block shares blk.kc, the final one
  // may be a tail — probe each depth once and scale by call counts.
  const i64 tail_kc = lay.kc_eff(lay.k_blocks - 1);
  struct KcGroup {
    i64 kc = 0, blocks = 0;
  };
  std::vector<KcGroup> kc_groups;
  if (tail_kc != lay.blk.kc) {
    if (lay.k_blocks > 1) kc_groups.push_back({lay.blk.kc, lay.k_blocks - 1});
    kc_groups.push_back({tail_kc, 1});
  } else {
    kc_groups.push_back({lay.blk.kc, lay.k_blocks});
  }
  for (const KcGroup& g : kc_groups) {
    const i64 kstride = sdot ? round_up(g.kc, 4) : g.kc;
    const i64 tbl_groups =
        lay.tbl() ? ceil_div(g.kc, static_cast<i64>(lay.tbl_group)) : 0;
    const Counters per_call = probe_micro(kernel, bits, g.kc, kstride,
                                          tbl_groups, lay.tbl_group);
    const u64 scale = static_cast<u64>(row_panels * q_total * g.blocks);
    for (size_t i = 0; i < kNumOps; ++i) counts.n[i] += per_call.n[i] * scale;
  }
  // Per-(jc, kcb) B-block pack: fused gather (plain/SDOT), gather + online
  // table build (TBL kActTables), or index encode (TBL kWeightTables).
  for (i64 kcb = 0; kcb < lay.k_blocks; ++kcb)
    for (i64 jc = 0; jc < lay.n_blocks; ++jc) {
      if (lay.tbl() && !tbl_wt) {
        const i64 nc_pad = round_up(lay.nc_eff(jc), kNr);
        tally_pack_tbl_tables(&tally_ctx, nc_pad * lay.tbl_groups(kcb));
        tally_pack_im2col_gather(&tally_ctx, nc_pad * lay.kc_eff(kcb));
      } else if (tbl_wt) {
        tally_pack_im2col_gather(&tally_ctx,
                                 round_up(lay.nc_eff(jc), i64{16}) *
                                     lay.tbl_groups(kcb) * lay.tbl_group);
      } else {
        tally_pack_im2col_gather(
            &tally_ctx, round_up(lay.nc_eff(jc), kNr) * lay.k_stride(kcb));
      }
    }
  // C accumulate re-loads for every K block after the first (the 16-col
  // row-major TBL tile re-loads four vectors per row).
  if (lay.k_blocks > 1) {
    const u64 acc = static_cast<u64>((lay.k_blocks - 1) * m * q_total) *
                    (tbl_wt ? 4u : 1u);
    counts[Op::kLd1] += acc;
    counts[Op::kAdd] += acc;
  }
  if (fused_epilogue) {
    // Mirrors gemm_blocked.cpp's epilogue tallies: 2 scalar fixed-point
    // ops per output element, one i8 store per final row segment.
    counts[Op::kScalar] += static_cast<u64>(m * lay.n) * 2;
    counts[Op::kSt1] += static_cast<u64>(m * q_total);
  }
  counts.merge(tally_ctx.counts);
  return counts;
}

// Assumes g_mu is held (the replay memo is shared).
double score_locked(const ConvShape& s, int bits, ArmKernel kernel,
                    const GemmBlocking& blocking) {
  const i64 m = s.gemm_m(), n = s.gemm_n(), k = s.gemm_k();
  const BlockedLayout lay = layout_for(m, n, k, blocking, kernel, bits);

  Counters counts =
      issue_counts(s, bits, kernel, lay, /*fused_epilogue=*/false);
  const ReplayMisses misses = replay_memoized(s, lay);
  counts[Op::kL1Miss] += misses.l1;
  counts[Op::kL2Miss] += misses.l2;
  return CostModel::cortex_a53().cycles_for(counts, /*interleaved=*/true);
}

// Chained whole-net objective: one shared cache sim walked through the
// layer sequence. Layer i reads its gather from the region layer i-1's
// epilogue wrote, and the pack-block / C scratch bases are shared across
// layers (recycled buffers). No memoization — the misses depend on the
// whole assignment.
double score_graph(const std::vector<GraphSearchLayer>& layers,
                   const std::vector<GemmBlocking>& blocking) {
  LBC_CHECK_MSG(layers.size() == blocking.size(),
                "score_graph: one blocking per layer required");
  Replay r;
  double total = 0;
  const CostModel cm = CostModel::cortex_a53();
  for (size_t i = 0; i < layers.size(); ++i) {
    const GraphSearchLayer& gl = layers[i];
    const BlockedLayout lay =
        layout_for(gl.shape.gemm_m(), gl.shape.gemm_n(), gl.shape.gemm_k(),
                   blocking[i], gl.kernel, gl.bits);
    ReplayBases bases;
    bases.a = kBaseA + static_cast<u64>(i) * kLayerStride;
    bases.in = kBaseIn + static_cast<u64>(i) * kLayerStride;
    bases.out = kBaseIn + static_cast<u64>(i + 1) * kLayerStride;
    Counters counts =
        issue_counts(gl.shape, gl.bits, gl.kernel, lay, /*fused_epilogue=*/true);
    const ReplayMisses misses = replay_schedule_at(r, gl.shape, lay, bases);
    counts[Op::kL1Miss] += misses.l1;
    counts[Op::kL2Miss] += misses.l2;
    total += cm.cycles_for(counts, /*interleaved=*/true);
  }
  return total;
}

}  // namespace

int blocking_scheme_id(ArmKernel kernel, int bits) {
  if (kernel == ArmKernel::kTblGemm) return 4;
  if (kernel == ArmKernel::kSdotExt) return 3;
  if (kernel == ArmKernel::kNcnn) return 2;
  return bits <= 3 ? 1 : 0;
}

TblOrientation choose_tbl_orientation(i64 m, i64 n, i64 k, int bits,
                                      bool weights_ternary) {
  // Per-MAC issue cost of one TBL group step is ~12.1 cycles (1x ld1 idx,
  // 1x ld1x4 tables, 4x tbl+2xsaddw) serving 64*g MACs. kActTables adds
  // the online table build: ~10 cycles per (column, group) amortized over
  // the m rows sharing the tables. kWeightTables builds nothing online but
  // streams round_up(m,4)*ceil(k/g)*64 bytes of offline tables once per
  // column-block pass; misses price at L2 (8 cyc/line) while the table set
  // fits L2, else DRAM (58).
  const int ga = tbl_group_for(TblOrientation::kActTables, bits,
                               weights_ternary);
  const int gb = tbl_group_for(TblOrientation::kWeightTables, bits,
                               weights_ternary);
  const double cost_a = 12.1 / (64.0 * ga) + 10.0 / (double(ga) * double(m));
  const double table_bytes =
      double(round_up(m, i64{4})) * double(ceil_div(k, i64{gb})) * 16.0;
  const double miss = table_bytes <= 384.0 * 1024.0 ? 8.0 : 58.0;
  const double passes = double(ceil_div(n, i64{256}));
  const double cost_b =
      12.1 / (64.0 * gb) +
      miss * (table_bytes / 64.0) * passes / (double(m) * double(k) * double(n));
  return cost_a <= cost_b ? TblOrientation::kActTables
                          : TblOrientation::kWeightTables;
}

double score_blocking(const ConvShape& s, int bits, ArmKernel kernel,
                      const GemmBlocking& blocking) {
  std::lock_guard<std::mutex> lock(g_mu);
  return score_locked(s, bits, kernel, blocking);
}

GemmBlocking search_blocking(const ConvShape& s, int bits, ArmKernel kernel) {
  const bool sdot = kernel == ArmKernel::kSdotExt;
  const i64 m = s.gemm_m(), n = s.gemm_n(), k = s.gemm_k();
  const int tblg =
      kernel == ArmKernel::kTblGemm
          ? tbl_group_for(choose_tbl_orientation(m, n, k, bits, false), bits,
                          false)
          : 0;

  std::ostringstream os;
  os << geometry_key(s) << "|b" << bits << "|sch"
     << blocking_scheme_id(kernel, bits);
  const std::string key = os.str();

  std::lock_guard<std::mutex> lock(g_mu);
  if (const auto it = g_winners.find(key); it != g_winners.end()) {
    ++g_stats.memo_hits;
    return it->second;
  }
  ++g_stats.searches;

  // Fixed candidate grid, clamped to the problem and de-duplicated.
  // Kc x Nc bounds the L1-resident B block (<= 32 KB for every candidate);
  // Mc bounds the A rows swept per L2 refill.
  std::vector<GemmBlocking> candidates;
  candidates.push_back(default_blocking(m, n, k, sdot));
  for (const i64 mc : {64, 128})
    for (const i64 kc : {64, 128, 256})
      for (const i64 nc : {32, 64, 128}) {
        const GemmBlocking cand =
            clamp_blocking(GemmBlocking{mc, kc, nc}, m, n, k, sdot, tblg);
        if (std::find(candidates.begin(), candidates.end(), cand) ==
            candidates.end())
          candidates.push_back(cand);
      }
  if (tblg != 0) {
    // TBL-specific extensions. The weight-tables orientation streams its
    // offline table set once per column pass, so wide Nc (up to the full
    // column range) amortizes that traffic; the act-tables orientation
    // amortizes online table builds over the Mc rows sharing them and
    // prefers narrow Nc with a mid-size Kc. Neither regime sits inside the
    // shared grid above, and extending only the TBL search keeps the other
    // schemes' memoized winners (and the baselines built on them) stable.
    for (const i64 mc : {64, 128})
      for (const i64 kc : {96, 128, 192, 256})
        for (const i64 nc : {i64{32}, i64{256}, i64{512}, n}) {
          const GemmBlocking cand =
              clamp_blocking(GemmBlocking{mc, kc, nc}, m, n, k, sdot, tblg);
          if (std::find(candidates.begin(), candidates.end(), cand) ==
              candidates.end())
            candidates.push_back(cand);
        }
  }

  GemmBlocking best = candidates.front();
  double best_score = score_locked(s, bits, kernel, best);
  for (size_t i = 1; i < candidates.size(); ++i) {
    const double sc = score_locked(s, bits, kernel, candidates[i]);
    if (sc < best_score) {
      best_score = sc;
      best = candidates[i];
    }
  }
  g_winners.emplace(key, best);
  return best;
}

TileSearchStats tile_search_stats() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_stats;
}

double score_graph_blocking(const std::vector<GraphSearchLayer>& layers,
                            const std::vector<GemmBlocking>& blocking) {
  return score_graph(layers, blocking);
}

u64 graph_blocking_hash(const std::vector<GraphSearchLayer>& layers) {
  u64 h = 1469598103934665603ull;  // FNV-1a
  const auto mix = [&h](i64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<u64>(v >> (i * 8)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<i64>(layers.size()));
  for (const GraphSearchLayer& gl : layers) {
    const ConvShape& s = gl.shape;
    for (const i64 v : {s.batch, s.in_c, s.in_h, s.in_w, s.out_c,
                        static_cast<i64>(s.kernel), static_cast<i64>(s.stride),
                        static_cast<i64>(s.pad)})
      mix(v);
    mix(gl.bits);
    mix(blocking_scheme_id(gl.kernel, gl.bits));
  }
  return h;
}

GraphSearchResult search_graph_blocking(
    const std::vector<GraphSearchLayer>& layers) {
  GraphSearchResult res;
  if (layers.empty()) return res;

  // Seed from the memoized per-layer greedy winners, and build each
  // layer's small candidate set around them.
  std::vector<GemmBlocking> current;
  std::vector<std::vector<GemmBlocking>> cands(layers.size());
  for (size_t i = 0; i < layers.size(); ++i) {
    const GraphSearchLayer& gl = layers[i];
    const bool sdot = gl.kernel == ArmKernel::kSdotExt;
    const i64 m = gl.shape.gemm_m(), n = gl.shape.gemm_n(),
              k = gl.shape.gemm_k();
    const int tblg =
        gl.kernel == ArmKernel::kTblGemm
            ? tbl_group_for(choose_tbl_orientation(m, n, k, gl.bits, false),
                            gl.bits, false)
            : 0;
    const GemmBlocking greedy = search_blocking(gl.shape, gl.bits, gl.kernel);
    current.push_back(greedy);
    std::vector<GemmBlocking>& cc = cands[i];
    cc.push_back(greedy);
    for (const GemmBlocking& raw :
         {default_blocking(m, n, k, sdot), GemmBlocking{128, 256, 32},
          GemmBlocking{128, 128, 64}, GemmBlocking{64, 128, 32},
          GemmBlocking{64, 256, 128}}) {
      const GemmBlocking cand = clamp_blocking(raw, m, n, k, sdot, tblg);
      if (std::find(cc.begin(), cc.end(), cand) == cc.end())
        cc.push_back(cand);
    }
  }

  res.greedy_cycles = score_graph(layers, current);
  double best = res.greedy_cycles;
  // Coordinate descent under the chained objective: two passes over the
  // layers, each trying the layer's candidates with the rest held fixed.
  // Monotone by construction, so the joint plan never loses to the seed.
  for (int pass = 0; pass < 2; ++pass) {
    bool improved = false;
    for (size_t i = 0; i < layers.size(); ++i) {
      for (const GemmBlocking& cand : cands[i]) {
        if (cand == current[i]) continue;
        std::vector<GemmBlocking> trial = current;
        trial[i] = cand;
        const double sc = score_graph(layers, trial);
        if (sc < best) {
          best = sc;
          current = std::move(trial);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  res.blocking = std::move(current);
  res.joint_cycles = best;
  return res;
}

}  // namespace lbc::armkern
