// ARM-side {Mc, Kc, Nc} block-size auto-search (paper Sec. 4 brings this
// discipline to the GPU tiling; this is the ARM counterpart for the
// blocked GEMM of blocking.h).
//
// Each candidate is priced with the same Cortex-A53 cost model the
// benches report: issue cycles come from probing the micro kernel once
// per distinct Kc depth (exact per-call instruction mix, scaled by call
// counts) plus the analytic pack/accumulate tallies, and stall cycles
// come from replaying the blocked schedule's memory trace at cache-line
// granularity into a fresh CacheSim. The replay feeds synthetic
// disjoint-region addresses — the cache model is address-identity based
// (cache.h), so line identities are all that matter and no host buffers
// are involved.
//
// Results are memoized per (conv geometry, bits, scheme) — "the optimal
// tiling parameters only need to be determined once per convolution
// shape" (Sec. 5.1) — and the replay trace is additionally shared across
// bits and schemes with the same packed layout, since the SMLAL / MLA /
// ncnn kernels issue an identical load pattern. gpukern::TuningCache v2
// persists winners across process runs (core::plan_arm_conv).
#pragma once

#include "armkern/blocking.h"
#include "armkern/gemm_lowbit.h"
#include "common/conv_shape.h"

namespace lbc::armkern {

/// Modeled total cycles of one clamped blocking candidate for the fused
/// conv GEMM (exposed for tests and the ablation bench).
double score_blocking(const ConvShape& s, int bits, ArmKernel kernel,
                      const GemmBlocking& blocking);

/// Pick the best {Mc, Kc, Nc} for the shape's GEMM view. Deterministic:
/// a fixed candidate grid scored with score_blocking, ties broken by
/// candidate order. Falls back to default_blocking geometry when the
/// problem is degenerate. Thread-safe; memoized per (geometry, bits,
/// scheme).
GemmBlocking search_blocking(const ConvShape& s, int bits, ArmKernel kernel);

/// Stable scheme id of the micro kernel that would execute (0 = SMLAL,
/// 1 = MLA, 2 = ncnn, 3 = SDOT, 4 = TBL) — the persistent tuning cache
/// keys ARM entries by it (gpukern::ArmTuningKey::scheme).
int blocking_scheme_id(ArmKernel kernel, int bits);

/// TBL orientation pricing (schemes.h TblOrientation), decided from
/// geometry alone: kActTables pays the online table build amortized over
/// the m rows it serves; kWeightTables pays nothing online but streams an
/// 8x-inflated offline table set whose misses scale with the number of
/// C column-block passes. Deterministic and cheap (no replay).
TblOrientation choose_tbl_orientation(i64 m, i64 n, i64 k, int bits,
                                      bool weights_ternary);

struct TileSearchStats {
  i64 searches = 0;   ///< cold searches (full candidate sweeps)
  i64 memo_hits = 0;  ///< served from the in-process memo
};
TileSearchStats tile_search_stats();

// ---- graph-level joint search -----------------------------------------
//
// The per-layer search above prices each conv against a COLD cache: its
// replay starts from an empty CacheSim, so the winner is blind to what the
// previous layer left behind. In a fused graph the layers chain — layer
// i's epilogue writes the i8 activations that layer i+1's im2col gather
// reads, and the C / pack-block scratch buffers are recycled across every
// layer — so the right objective is the whole net: one shared cache-sim
// replay walked through the layer sequence, per-layer issue cycles summed
// on top. search_graph_blocking seeds from the memoized per-layer winners
// and runs a small coordinate-descent over per-layer candidates under that
// chained objective; the result never scores worse than the greedy seed.

/// One conv layer of the chain, in execution order.
struct GraphSearchLayer {
  ConvShape shape;
  int bits = 8;
  ArmKernel kernel = ArmKernel::kOursGemm;
};

struct GraphSearchResult {
  std::vector<GemmBlocking> blocking;  ///< per layer, same order as input
  /// Whole-net modeled cycles of the returned joint plan under the chained
  /// replay (issue + pack + misses, per-layer cost-model totals summed).
  double joint_cycles = 0;
  /// The per-layer greedy winners priced under the SAME chained objective —
  /// the margin (greedy - joint) is what graph-level planning buys.
  double greedy_cycles = 0;
};

/// Price a full per-layer blocking assignment under the chained whole-net
/// objective (exposed for tests and the e2e bench). `blocking` must have
/// one entry per layer.
double score_graph_blocking(const std::vector<GraphSearchLayer>& layers,
                            const std::vector<GemmBlocking>& blocking);

/// Joint whole-net search. Deterministic; thread-safe. Degenerate inputs
/// (empty layer list) return an empty result.
GraphSearchResult search_graph_blocking(
    const std::vector<GraphSearchLayer>& layers);

/// Stable FNV-1a hash over the chain's (geometry, bits, scheme) sequence —
/// the TuningCache v4 `graph` rows and the serve-side graph-plan registry
/// key joint results by it.
u64 graph_blocking_hash(const std::vector<GraphSearchLayer>& layers);

}  // namespace lbc::armkern
