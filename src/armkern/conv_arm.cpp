#include "armkern/conv_arm.h"

#include <algorithm>
#include <cassert>

#include "common/align.h"

#include "armkern/bitserial.h"
#include "armkern/direct_conv.h"
#include "armkern/winograd23.h"
#include "armsim/neon.h"
#include "refconv/im2col.h"

namespace lbc::armkern {

using namespace armsim;

namespace {

// im2col is a bulk copy on NEON, with per-row index math.
void tally_im2col(Ctx& ctx, const ConvShape& s, const Tensor<i8>& input,
                  const Tensor<i8>& bmat) {
  // Strided gather: the 3x3/strided cases copy short row segments, so the
  // effective move width is ~8 bytes per load/store pair.
  const u64 groups = static_cast<u64>(ceil_div(s.im2col_elems(), 8));
  ctx.tally(Op::kLd1, groups);
  ctx.tally(Op::kSt1, groups);
  ctx.tally(Op::kScalar, static_cast<u64>(s.gemm_k() * s.batch * s.out_h()));
  ctx.tally(Op::kLoop, groups / 4 + 1);
  // Cache traffic: each kernel tap streams the whole input once, and the
  // im2col matrix is written once.
  for (i64 tap = 0; tap < s.kernel * s.kernel; ++tap)
    ctx.mem_range(input.data(), static_cast<u64>(input.elems()));
  ctx.mem_range(bmat.data(), static_cast<u64>(bmat.elems()));
}

/// Fixed cost of forking/joining the row-panel worker pool (Pi 3B has 4
/// A53 cores; the paper evaluates single-threaded, threads > 1 is our
/// extension — see bench/ext_multicore_arm).
constexpr double kThreadSyncCycles = 20000.0;

}  // namespace

ArmConvResult conv2d_s32(const ConvShape& s, const Tensor<i8>& input,
                         const Tensor<i8>& weight, const ArmConvOptions& opt) {
  assert(s.valid());
  ArmConvResult res;
  res.space.baseline_elems = s.activation_elems() + s.weight_elems();

  ConvAlgo algo = opt.algo;
  if (algo == ConvAlgo::kAuto)
    algo = (s.winograd_eligible() && opt.bits >= 4 && opt.bits <= 6)
               ? ConvAlgo::kWinograd
               : ConvAlgo::kGemm;

  const CostModel cm = CostModel::cortex_a53();
  bool interleaved = true;
  Ctx serial_ctx;                  // im2col + packing pre-passes
  double parallel_cycles = 0;      // slowest worker of the kernel region
  bool threaded = false;

  if (algo == ConvAlgo::kDirect) {
    const DirectConvStats ds = direct_conv_s32(s, input, weight, res.out);
    res.counts.merge(ds.counts);
    parallel_cycles = cm.cycles_for(ds.counts, interleaved);
    // No im2col and no packing: zero space overhead (the algorithm's one
    // advantage; Sec. 2.2).
  } else if (algo == ConvAlgo::kWinograd) {
    const WinogradStats ws =
        winograd_conv_s32(s, input, weight, opt.bits, res.out);
    res.counts.merge(ws.counts);
    parallel_cycles = cm.cycles_for(ws.counts, interleaved);
    res.space.im2col_elems = ws.transform_buf_elems;  // transform scratch
  } else {
    // Explicit GEMM path: materialize im2col (the paper materializes it for
    // every layer, including 1x1 — Fig. 13's conv18 ratio pins this down).
    const Tensor<i8> bmat = ref::im2col(s, input);
    tally_im2col(serial_ctx, s, input, bmat);
    res.space.im2col_elems = s.im2col_elems();

    const i64 m = s.gemm_m(), n = s.gemm_n(), k = s.gemm_k();
    res.out = Tensor<i32>(Shape4{s.batch, s.out_c, s.out_h(), s.out_w()});
    // weight tensor [oc][ic][kh][kw] is already the row-major M x K matrix
    // with K ordered (ic, kh, kw), matching im2col's row order. The GEMM
    // writes C[M x N] = C[out_c][b*oh*ow]; for batch 1 that is exactly the
    // NCHW output layout, and for batch > 1 the rows are re-scattered into
    // NCHW below. (The paper's ARM evaluation uses batch 1, Sec. 5.2.)

    AlignedVector<i32> cbuf;
    i32* cptr = res.out.data();
    if (s.batch > 1) {
      cbuf.resize(static_cast<size_t>(m * n));
      cptr = cbuf.data();
    }
    if (algo == ConvAlgo::kBitserial) {
      assert(opt.bits <= 2);
      const BitserialStats bs = bitserial_gemm_s8s32(
          weight.data(), bmat.data(), cptr, m, n, k, opt.bits);
      res.counts.merge(bs.counts);
      parallel_cycles = cm.cycles_for(bs.counts, interleaved);
    } else {
      GemmOptions gopt;
      gopt.bits = opt.bits;
      gopt.kernel = opt.kernel;
      gopt.threads = opt.threads;
      const GemmStats gs =
          gemm_s8s32(weight.data(), bmat.data(), cptr, m, n, k, gopt);
      res.counts.merge(gs.counts);
      res.space.pack_extra_elems = gs.pack_extra_elems;
      interleaved = gs.interleaved;
      // Multicore timing: the panel loop is split across workers; total
      // time follows the slowest one. The packing pre-pass stays serial.
      for (const auto& tc : gs.thread_counts)
        parallel_cycles =
            std::max(parallel_cycles, cm.cycles_for(tc, interleaved));
      serial_ctx.counts.merge(gs.serial_counts);
      threaded = gs.thread_counts.size() > 1;
    }
    if (s.batch > 1) {
      // Re-scatter C[oc][b*oh*ow] into NCHW (bookkeeping copy; its cost is
      // charged as a streaming pass).
      const i64 ohw = s.out_h() * s.out_w();
      for (i64 oc = 0; oc < m; ++oc)
        for (i64 b = 0; b < s.batch; ++b)
          for (i64 i = 0; i < ohw; ++i)
            res.out.data()[((b * m + oc) * ohw) + i] =
                cbuf[static_cast<size_t>(oc * n + b * ohw + i)];
      serial_ctx.tally(Op::kLd1, static_cast<u64>(m * n / 4 + 1));
      serial_ctx.tally(Op::kSt1, static_cast<u64>(m * n / 4 + 1));
      serial_ctx.mem_range(res.out.data(), static_cast<u64>(m * n) * 4);
    }
  }

  res.counts.merge(serial_ctx.counts);
  res.cycles = parallel_cycles + cm.cycles_for(serial_ctx.counts, interleaved) +
               (threaded ? kThreadSyncCycles : 0.0);
  res.seconds = res.cycles / cm.freq_hz;
  return res;
}

}  // namespace lbc::armkern
