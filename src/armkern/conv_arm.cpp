#include "armkern/conv_arm.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "armsim/verifier.h"
#include "common/align.h"
#include "common/fault_injection.h"
#include "common/workspace.h"

#include "armkern/direct_conv.h"
#include "armkern/tile_search.h"
#include "armsim/neon.h"
#include "refconv/conv_ref.h"
#include "refconv/im2col.h"

namespace lbc::armkern {

using namespace armsim;

namespace {

// im2col is a bulk copy on NEON, with per-row index math.
void tally_im2col(Ctx& ctx, const ConvShape& s, const Tensor<i8>& input,
                  const i8* bmat, i64 bmat_elems) {
  // Strided gather: the 3x3/strided cases copy short row segments, so the
  // effective move width is ~8 bytes per load/store pair.
  const u64 groups = static_cast<u64>(ceil_div(s.im2col_elems(), 8));
  ctx.tally(Op::kLd1, groups);
  ctx.tally(Op::kSt1, groups);
  ctx.tally(Op::kScalar, static_cast<u64>(s.gemm_k() * s.batch * s.out_h()));
  ctx.tally(Op::kLoop, groups / 4 + 1);
  // Cache traffic: each kernel tap streams the whole input once, and the
  // im2col matrix is written once.
  for (i64 tap = 0; tap < s.kernel * s.kernel; ++tap)
    ctx.mem_range(input.data(), static_cast<u64>(input.elems()));
  ctx.mem_range(bmat, static_cast<u64>(bmat_elems));
}

// The reference rung is a plain scalar loop nest: per MAC, two scalar
// loads folded into address math plus the multiply-add, and loop control
// per inner iteration. Roughly an order of magnitude slower than the
// packed NEON kernels — the price of degrading instead of crashing.
void tally_reference(Ctx& ctx, const ConvShape& s) {
  const u64 macs = static_cast<u64>(s.macs());
  ctx.tally(Op::kScalar, 3 * macs);
  ctx.tally(Op::kLoop, macs);
}

/// Fixed cost of forking/joining the row-panel worker pool (Pi 3B has 4
/// A53 cores; the paper evaluates single-threaded, threads > 1 is our
/// extension — see bench/ext_multicore_arm).
constexpr double kThreadSyncCycles = 20000.0;

std::string shape4_str(const Shape4& sh) {
  std::ostringstream os;
  os << sh.n << 'x' << sh.c << 'x' << sh.h << 'x' << sh.w;
  return os.str();
}

}  // namespace

const char* algo_name(ConvAlgo a) {
  switch (a) {
    case ConvAlgo::kAuto: return "auto";
    case ConvAlgo::kGemm: return "gemm";
    case ConvAlgo::kWinograd: return "winograd";
    case ConvAlgo::kBitserial: return "bitserial";
    case ConvAlgo::kDirect: return "direct";
    case ConvAlgo::kReference: return "reference";
  }
  return "unknown";
}

bool winograd_eligible_for(const ConvShape& s, int bits) {
  return s.winograd_eligible() && bits >= 4 && bits <= 6;
}

bool bitserial_eligible_for(int bits) { return bits <= 2; }

bool sdot_eligible_for(int bits) { return bits >= 4; }

bool tbl_eligible_for(int bits) { return bits <= 3; }

i64 ArmConvPlan::workspace_bytes(i64 batch) const {
  const ConvShape sb = shape.with_batch(batch);
  if (algo == ConvAlgo::kReference || algo == ConvAlgo::kDirect) return 0;
  if (algo == ConvAlgo::kWinograd) {
    const i64 tiles =
        sb.batch * ceil_div(sb.out_h(), 2) * ceil_div(sb.out_w(), 2);
    i64 total = 0;
    total += 16 * workspace_rounded(sb.in_c * tiles);  // V_e, i8
    total += 16 * workspace_rounded(sb.out_c * tiles *
                                    static_cast<i64>(sizeof(i32)));  // M_e
    // Each of the 16 GEMMs packs its B (= V_e) into the arena.
    total += 16 * workspace_rounded(packed_b_bytes(sb.in_c, tiles));
    return total;
  }
  // GEMM-family path: im2col + concat C buffer (batch > 1) + B-side pack.
  const i64 m = sb.gemm_m(), n = sb.gemm_n(), k = sb.gemm_k();
  if (blocking.enabled() && algo == ConvAlgo::kGemm &&
      kernel != ArmKernel::kTraditional) {
    // Fused blocked path: no materialized im2col and no full packed-B
    // copy — only one live (Kc x Nc) block buffer per modeled worker,
    // plus the batch > 1 C staging.
    const bool tbl = kernel == ArmKernel::kTblGemm;
    const BlockedLayout lay = blocked_layout(
        m, n, k, blocking, kernel == ArmKernel::kSdotExt,
        tbl ? tbl_a.group : 0,
        tbl ? tbl_a.orient : TblOrientation::kActTables);
    const int workers =
        blocked_threads(lay, requested.threads, requested.verify);
    i64 total = workers * workspace_rounded(lay.block_bytes());
    if (sb.batch > 1)
      total += workspace_rounded(m * n * static_cast<i64>(sizeof(i32)));
    return total;
  }
  i64 total = workspace_rounded(k * n);  // im2col matrix
  if (sb.batch > 1)
    total += workspace_rounded(m * n * static_cast<i64>(sizeof(i32)));
  if (algo == ConvAlgo::kBitserial)
    total += workspace_rounded(n * bitplanes.bits * bitplanes.chunk_bytes);
  else if (kernel == ArmKernel::kSdotExt)
    total += workspace_rounded(packed_sdot_b_bytes(k, n));
  else if (kernel == ArmKernel::kOursGemm || kernel == ArmKernel::kNcnn)
    total += workspace_rounded(packed_b_bytes(k, n));
  // kTraditional keeps its column-major B copy on its own heap block.
  return total;
}

StatusOr<ArmConvPlan> plan_conv(const ConvShape& s, const Tensor<i8>& weight,
                                const ArmConvOptions& opt) {
  // Boundary validation: survives release builds, rejects instead of UB.
  LBC_VALIDATE(s.valid(), kInvalidArgument,
               "invalid conv shape: " << describe(s));
  LBC_VALIDATE(opt.bits >= 2 && opt.bits <= 8, kInvalidArgument,
               "bits must be in [2, 8], got " << opt.bits);
  LBC_VALIDATE(opt.threads >= 1 && opt.threads <= 64, kInvalidArgument,
               "threads must be in [1, 64], got " << opt.threads);
  const Shape4 want_w{s.out_c, s.in_c, s.kernel, s.kernel};
  LBC_VALIDATE(weight.shape() == want_w, kInvalidArgument,
               "weight tensor is " << shape4_str(weight.shape())
                                   << " but the shape needs "
                                   << shape4_str(want_w));

  ArmConvPlan plan;
  plan.shape = s;
  plan.requested = opt;
  plan.weight = weight;

  ConvAlgo algo = opt.algo;
  ArmKernel kernel = opt.kernel;
  if (algo == ConvAlgo::kAuto)
    algo = winograd_eligible_for(s, opt.bits) ? ConvAlgo::kWinograd
                                              : ConvAlgo::kGemm;

  // Dispatch fallback chain, rung 1: an ineligible specialized algo
  // degrades to the low-bit GEMM instead of asserting. Resolved once here;
  // every execute inherits the record.
  if (algo == ConvAlgo::kWinograd && !winograd_eligible_for(s, opt.bits)) {
    std::ostringstream why;
    if (!s.winograd_eligible())
      why << "winograd needs 3x3/stride-1, got k" << s.kernel << " s"
          << s.stride;
    else
      why << "winograd runs at 4-6 bit, got " << opt.bits;
    plan.planned_fallback.record("winograd", "gemm", why.str());
    algo = ConvAlgo::kGemm;
  }
  if (algo == ConvAlgo::kBitserial && !bitserial_eligible_for(opt.bits)) {
    plan.planned_fallback.record(
        "bitserial", "gemm",
        "bit-serial popcount kernel supports <= 2 bit, got " +
            std::to_string(opt.bits));
    algo = ConvAlgo::kGemm;
  }
  if (algo == ConvAlgo::kGemm && kernel == ArmKernel::kSdotExt &&
      !sdot_eligible_for(opt.bits)) {
    plan.planned_fallback.record("gemm[sdot]", "gemm[ours]",
                                 "SDOT packing pays off only at >= 4 bit, got " +
                                     std::to_string(opt.bits));
    kernel = ArmKernel::kOursGemm;
  }
  if (algo == ConvAlgo::kGemm && kernel == ArmKernel::kTblGemm &&
      !tbl_eligible_for(opt.bits)) {
    plan.planned_fallback.record(
        "gemm[tbl]", "gemm[ours]",
        "TBL product tables need 16 indices, so <= 3 bit, got " +
            std::to_string(opt.bits));
    kernel = ArmKernel::kOursGemm;
  }
  if (algo == ConvAlgo::kGemm && kernel == ArmKernel::kTblGemm &&
      (opt.blocking == BlockingPolicy::kOff ||
       (opt.blocking == BlockingPolicy::kExplicit &&
        !opt.explicit_blocking.enabled()))) {
    plan.planned_fallback.record("gemm[tbl]", "gemm[ours]",
                                 "TBL scheme requires the blocked driver "
                                 "(its B blocks are table/index panels, not "
                                 "a materialized im2col matrix)");
    kernel = ArmKernel::kOursGemm;
  }
  plan.algo = algo;
  plan.kernel = kernel;

  // Resolve the blocked-GEMM {Mc, Kc, Nc} once per plan. Only the
  // packed-panel GEMM rungs block; bitserial, winograd, direct, reference
  // and the traditional GEMM keep their own schedules.
  if (algo == ConvAlgo::kGemm && kernel != ArmKernel::kTraditional) {
    const bool sdot = kernel == ArmKernel::kSdotExt;
    switch (opt.blocking) {
      case BlockingPolicy::kOff:
        break;
      case BlockingPolicy::kExplicit:
        plan.blocking = clamp_blocking(opt.explicit_blocking, s.gemm_m(),
                                       s.gemm_n(), s.gemm_k(), sdot);
        break;
      case BlockingPolicy::kAuto:
        plan.blocking = search_blocking(s, opt.bits, kernel);
        break;
    }
    // Multicore extension: the jc column bands are the threading
    // dimension, so refine Nc until every requested worker gets at least
    // one band (the search optimizes the single-core schedule; the
    // paper's ARM evaluation is single-threaded).
    if (plan.blocking.enabled() && opt.threads > 1) {
      const i64 n_pad = round_up(s.gemm_n(), kNr);
      const i64 per = round_up(ceil_div(n_pad, static_cast<i64>(opt.threads)),
                               kNr);
      if (plan.blocking.nc > per)
        plan.blocking = clamp_blocking(
            GemmBlocking{plan.blocking.mc, plan.blocking.kc, per}, s.gemm_m(),
            s.gemm_n(), s.gemm_k(), sdot);
    }
  }

  LBC_VALIDATE(
      !FaultInjector::instance().should_fire(FaultSite::kPlanCompileFail),
      kResourceExhausted,
      "conv plan compilation failed: weight prepack resources exhausted "
      "(injected fault)");

  // Weight prepack in the executing kernel's layout. pctx records what the
  // pack would cost per call — the cycles a compiled plan amortizes away.
  // It is never merged into execute-time counts (both APIs exclude weight
  // packing: weights are packed offline in deployment).
  Ctx pctx;
  const i64 m = s.gemm_m(), k = s.gemm_k();
  if (algo == ConvAlgo::kWinograd) {
    plan.winograd = winograd_plan_weights(weight, s.out_c, s.in_c, &pctx);
    plan.packed_weight_bytes = plan.winograd.packed_bytes();
  } else if (algo == ConvAlgo::kBitserial) {
    plan.bitplanes = bitserial_plan_weights(weight.data(), m, k, opt.bits,
                                            &pctx);
    plan.packed_weight_bytes = plan.bitplanes.packed_bytes();
  } else if (algo == ConvAlgo::kGemm) {
    if (kernel == ArmKernel::kSdotExt) {
      plan.sdot_a = pack_sdot_a(weight.data(), m, k, &pctx);
      plan.packed_weight_bytes = static_cast<i64>(plan.sdot_a.data.size());
    } else if (kernel == ArmKernel::kTblGemm) {
      const TblOrientation orient = choose_tbl_orientation(
          m, s.gemm_n(), k, opt.bits,
          tbl_values_ternary(weight.data(), m, k));
      plan.tbl_a = pack_tbl_a(weight.data(), m, k, opt.bits, orient, &pctx);
      plan.packed_weight_bytes = static_cast<i64>(plan.tbl_a.idx.size()) +
                                 static_cast<i64>(plan.tbl_a.tables.size());
    } else if (kernel == ArmKernel::kOursGemm ||
               kernel == ArmKernel::kNcnn) {
      plan.gemm_a = pack_a(&pctx, weight.data(), m, k);
      plan.packed_weight_bytes = static_cast<i64>(plan.gemm_a.data.size());
    }
    // kTraditional consumes the raw weight matrix — nothing to prepack.
  }
  // kDirect / kReference consume the raw weight tensor.
  plan.pack_cycles =
      CostModel::cortex_a53().cycles_for(pctx.counts, /*interleaved=*/true);
  return plan;
}

StatusOr<ArmConvResult> execute_conv(const ArmConvPlan& plan,
                                     const Tensor<i8>& input, Workspace& ws) {
  const ConvShape sb = plan.shape.with_batch(input.shape().n);
  const Shape4 want_in{sb.batch, sb.in_c, sb.in_h, sb.in_w};
  LBC_VALIDATE(input.shape() == want_in, kInvalidArgument,
               "input tensor is " << shape4_str(input.shape())
                                  << " but the shape needs "
                                  << shape4_str(want_in));
  LBC_VALIDATE(sb.valid(), kInvalidArgument,
               "invalid conv shape: " << describe(sb));
  ws.reset();

  ArmConvResult res;
  res.space.baseline_elems = sb.activation_elems() + sb.weight_elems();
  res.fallback = plan.planned_fallback;

  const ConvAlgo algo = plan.algo;
  const ArmKernel kernel = plan.kernel;
  const int bits = plan.requested.bits;
  const Tensor<i8>& weight = plan.weight;

  const CostModel cm = CostModel::cortex_a53();
  bool interleaved = true;
  Ctx serial_ctx;                  // im2col + packing pre-passes
  double parallel_cycles = 0;      // slowest worker of the kernel region
  bool threaded = false;
  FaultInjector& fi = FaultInjector::instance();

  // Checked execution: one verifier spans the whole execute — pre-passes,
  // packs, and kernels — so every ctx.mem access is bounds-checked against
  // the regions registered here and below.
  std::unique_ptr<Verifier> verifier;
  if (plan.requested.verify) {
    verifier = std::make_unique<Verifier>();
    serial_ctx.verifier = verifier.get();
    const i32 q = qmax_for_bits(bits);
    verifier->add_region(input.data(), input.elems(), "conv input", -q, q,
                         /*overread_slack=*/16);
    verifier->add_region(weight.data(), weight.elems(), "conv weight", -q, q);
  }

  // Rung 2 (the ladder's floor): scalar reference conv. Used when
  // explicitly requested, and as the recovery path when a fault fires in
  // the optimized pipeline. Cost of any wasted optimized attempt stays
  // charged — degradation is not free.
  const auto run_reference = [&] {
    res.out = ref::conv2d_s32(sb, input, weight);
    Ctx ref_ctx;
    ref_ctx.model_cache = false;  // scalar loop, charged per-op below
    tally_reference(ref_ctx, sb);
    serial_ctx.counts.merge(ref_ctx.counts);
    res.executed_algo = "reference";
  };
  const auto degrade_to_reference = [&](const char* from, std::string why) {
    res.fallback.record(from, "reference", std::move(why));
    run_reference();
  };
  // Re-scatter C[oc][b*oh*ow] into NCHW for batch > 1 (bookkeeping copy;
  // its cost is charged as a streaming pass). Shared by the materialized
  // and fused GEMM paths.
  const auto scatter_batched = [&](const i32* cp, i64 m, i64 n) {
    const i64 ohw = sb.out_h() * sb.out_w();
    for (i64 oc = 0; oc < m; ++oc)
      for (i64 b = 0; b < sb.batch; ++b)
        for (i64 i = 0; i < ohw; ++i)
          res.out.data()[((b * m + oc) * ohw) + i] = cp[oc * n + b * ohw + i];
    serial_ctx.tally(Op::kLd1, static_cast<u64>(m * n / 4 + 1));
    serial_ctx.tally(Op::kSt1, static_cast<u64>(m * n / 4 + 1));
    serial_ctx.mem_range(res.out.data(), static_cast<u64>(m * n) * 4);
  };

  res.executed_algo = algo_name(algo);
  bool degraded = false;

  if (algo == ConvAlgo::kReference) {
    run_reference();
    interleaved = false;
  } else if (algo == ConvAlgo::kDirect) {
    const DirectConvStats ds =
        direct_conv_s32(sb, input, weight, res.out, verifier.get());
    res.counts.merge(ds.counts);
    parallel_cycles = cm.cycles_for(ds.counts, interleaved);
    // No im2col and no packing: zero space overhead (the algorithm's one
    // advantage; Sec. 2.2).
  } else if (algo == ConvAlgo::kWinograd) {
    const WinogradStats wstats = winograd_conv_prepacked(
        sb, input, plan.winograd, bits, res.out, &ws, verifier.get());
    res.counts.merge(wstats.counts);
    parallel_cycles = cm.cycles_for(wstats.counts, interleaved);
    res.space.im2col_elems = wstats.transform_buf_elems;  // transform scratch
  } else if (fi.should_fire(FaultSite::kAllocFail)) {
    // Injected allocation failure of the GEMM scratch (the im2col matrix,
    // or the fused path's pack-block buffers): the GEMM path cannot run,
    // but the reference rung needs no scratch buffer at all.
    degrade_to_reference(
        algo_name(algo),
        plan.blocking.enabled()
            ? "pack-block scratch allocation failed (injected fault)"
            : "im2col buffer allocation failed (injected fault)");
    degraded = true;
  } else if (plan.blocking.enabled()) {
    // Cache-blocked GEMM with fused im2col packing: the im2col matrix is
    // never materialized — each (Kc x Nc) B block is gathered straight
    // from the input tensor inside the blocked loop nest, so the live
    // activation scratch is one block buffer per modeled worker.
    const i64 m = sb.gemm_m(), n = sb.gemm_n(), k = sb.gemm_k();
    res.out = Tensor<i32>(Shape4{sb.batch, sb.out_c, sb.out_h(), sb.out_w()});
    i32* cptr = res.out.data();
    if (sb.batch > 1) cptr = ws.alloc_n<i32>(m * n);
    if (verifier != nullptr) {
      verifier->add_region(res.out.data(),
                           res.out.elems() * static_cast<i64>(sizeof(i32)),
                           "conv output");
      if (sb.batch > 1)
        verifier->add_region(cptr, m * n * static_cast<i64>(sizeof(i32)),
                             "conv C staging");
    }
    const bool tbl = kernel == ArmKernel::kTblGemm;
    const BlockedLayout lay = blocked_layout(
        m, n, k, plan.blocking, kernel == ArmKernel::kSdotExt,
        tbl ? plan.tbl_a.group : 0,
        tbl ? plan.tbl_a.orient : TblOrientation::kActTables);
    // Fig. 13 / 15 accounting: what the fused path holds instead of the
    // k x n im2col matrix.
    res.space.im2col_elems =
        blocked_threads(lay, plan.requested.threads, plan.requested.verify) *
        lay.block_elems();
    if (fi.should_fire(FaultSite::kPackMisalign)) {
      degrade_to_reference("gemm",
                           "packed panel alignment check failed "
                           "(injected fault)");
      degraded = true;
    } else {
      GemmOptions gopt;
      gopt.bits = bits;
      gopt.kernel = kernel;
      gopt.threads = plan.requested.threads;
      gopt.workspace = &ws;
      gopt.verifier = verifier.get();  // forces threads = 1 when set
      gopt.blocking = plan.blocking;
      GemmStats gs;
      if (kernel == ArmKernel::kSdotExt)
        gs = gemm_s8s32_sdot_conv_fused(plan.sdot_a.view(), sb, input.data(),
                                        cptr, gopt);
      else if (kernel == ArmKernel::kTblGemm)
        gs = gemm_s8s32_tbl_conv_fused(plan.tbl_a.view(), sb, input.data(),
                                       cptr, gopt);
      else
        gs = gemm_s8s32_conv_fused(plan.gemm_a.view(), sb, input.data(), cptr,
                                   gopt);
      res.counts.merge(gs.counts);
      res.space.pack_extra_elems = gs.pack_extra_elems;
      interleaved = gs.interleaved;
      for (const auto& tc : gs.thread_counts)
        parallel_cycles =
            std::max(parallel_cycles, cm.cycles_for(tc, interleaved));
      serial_ctx.counts.merge(gs.serial_counts);
      threaded = gs.thread_counts.size() > 1;
    }
    if (!degraded && sb.batch > 1) scatter_batched(cptr, m, n);
  } else {
    // Explicit GEMM path: materialize im2col (the paper materializes it for
    // every layer, including 1x1 — Fig. 13's conv18 ratio pins this down).
    const i64 m = sb.gemm_m(), n = sb.gemm_n(), k = sb.gemm_k();
    i8* bmat = ws.alloc_n<i8>(k * n);
    if (verifier != nullptr) {
      const i32 q = qmax_for_bits(bits);
      verifier->add_region(bmat, k * n, "im2col matrix", -q, q);
    }
    ref::im2col_into(sb, input, bmat);
    tally_im2col(serial_ctx, sb, input, bmat, k * n);
    res.space.im2col_elems = sb.im2col_elems();

    res.out = Tensor<i32>(Shape4{sb.batch, sb.out_c, sb.out_h(), sb.out_w()});
    // weight tensor [oc][ic][kh][kw] is already the row-major M x K matrix
    // with K ordered (ic, kh, kw), matching im2col's row order. The GEMM
    // writes C[M x N] = C[out_c][b*oh*ow]; for batch 1 that is exactly the
    // NCHW output layout, and for batch > 1 the rows are re-scattered into
    // NCHW below. (The paper's ARM evaluation uses batch 1, Sec. 5.2.)

    i32* cptr = res.out.data();
    if (sb.batch > 1) cptr = ws.alloc_n<i32>(m * n);
    if (verifier != nullptr) {
      verifier->add_region(res.out.data(),
                           res.out.elems() * static_cast<i64>(sizeof(i32)),
                           "conv output");
      if (sb.batch > 1)
        verifier->add_region(cptr, m * n * static_cast<i64>(sizeof(i32)),
                             "conv C staging");
    }
    if (fi.should_fire(FaultSite::kPackMisalign)) {
      // Injected packing misalignment: the panel layout the micro kernels
      // assume does not hold, so running them would read out of lane.
      degrade_to_reference("gemm",
                           "packed panel alignment check failed "
                           "(injected fault)");
      degraded = true;
    } else if (algo == ConvAlgo::kBitserial) {
      const BitserialStats bs = bitserial_gemm_prepacked(
          plan.bitplanes, bmat, cptr, n, &ws, verifier.get());
      res.counts.merge(bs.counts);
      parallel_cycles = cm.cycles_for(bs.counts, interleaved);
    } else {
      GemmOptions gopt;
      gopt.bits = bits;
      gopt.kernel = kernel;
      gopt.threads = plan.requested.threads;
      gopt.workspace = &ws;
      gopt.verifier = verifier.get();  // forces threads = 1 when set
      GemmStats gs;
      if (kernel == ArmKernel::kTraditional)
        gs = gemm_s8s32(weight.data(), bmat, cptr, m, n, k, gopt);
      else if (kernel == ArmKernel::kSdotExt)
        gs = gemm_s8s32_sdot_prepacked(plan.sdot_a.view(), bmat, cptr, m, n,
                                       k, gopt);
      else
        gs = gemm_s8s32_prepacked(plan.gemm_a.view(), bmat, cptr, m, n, k,
                                  gopt);
      res.counts.merge(gs.counts);
      res.space.pack_extra_elems = gs.pack_extra_elems;
      interleaved = gs.interleaved;
      // Multicore timing: the panel loop is split across workers; total
      // time follows the slowest one. The packing pre-pass stays serial.
      for (const auto& tc : gs.thread_counts)
        parallel_cycles =
            std::max(parallel_cycles, cm.cycles_for(tc, interleaved));
      serial_ctx.counts.merge(gs.serial_counts);
      threaded = gs.thread_counts.size() > 1;
    }
    if (!degraded && sb.batch > 1) scatter_batched(cptr, m, n);
  }

  // Post-run overflow self-check: a kernel that reports accumulator
  // overflow (injected here; a real deployment checks saturation flags)
  // has produced untrusted output — recompute on the reference rung.
  if (res.executed_algo != "reference" &&
      fi.should_fire(FaultSite::kKernelOverflow)) {
    degrade_to_reference(res.executed_algo.c_str(),
                         "kernel accumulator overflow self-check tripped "
                         "(injected fault); recomputed");
  }

  res.counts.merge(serial_ctx.counts);
  res.cycles = parallel_cycles + cm.cycles_for(serial_ctx.counts, interleaved) +
               (threaded ? kThreadSyncCycles : 0.0);
  res.seconds = res.cycles / cm.freq_hz;

  if (verifier != nullptr) {
    Status vstatus = verifier->to_status();
    if (!vstatus.ok()) {
      return vstatus.with_context(std::string("checked execution of ") +
                                  res.executed_algo + " conv, bits=" +
                                  std::to_string(bits));
    }
  }
  return res;
}

StatusOr<FusedConvResult> execute_conv_fused(const ArmConvPlan& plan,
                                             const i8* input, i32* c,
                                             const TileEpilogue& epi,
                                             Workspace& ws) {
  LBC_VALIDATE(input != nullptr && c != nullptr && epi.fn != nullptr,
               kInvalidArgument, "execute_conv_fused: null operand");
  LBC_VALIDATE(plan.shape.batch == 1, kFailedPrecondition,
               "graph-fused execute is batch-1 (planned batch "
                   << plan.shape.batch << ")");
  LBC_VALIDATE(plan.algo == ConvAlgo::kGemm && plan.blocking.enabled() &&
                   plan.kernel != ArmKernel::kTraditional,
               kFailedPrecondition,
               "plan's resolved rung (" << algo_name(plan.algo) << "/"
                   << (plan.blocking.enabled() ? "blocked" : "unblocked")
                   << ") is not the blocked fused-pack GEMM");

  const ConvShape& sb = plan.shape;
  const CostModel cm = CostModel::cortex_a53();
  FusedConvResult res;
  res.space.baseline_elems = sb.activation_elems() + sb.weight_elems();

  GemmOptions gopt;
  gopt.bits = plan.requested.bits;
  gopt.kernel = plan.kernel;
  gopt.threads = plan.requested.threads;
  gopt.workspace = &ws;
  gopt.blocking = plan.blocking;
  gopt.epilogue = &epi;
  GemmStats gs;
  if (plan.kernel == ArmKernel::kSdotExt)
    gs = gemm_s8s32_sdot_conv_fused(plan.sdot_a.view(), sb, input, c, gopt);
  else if (plan.kernel == ArmKernel::kTblGemm)
    gs = gemm_s8s32_tbl_conv_fused(plan.tbl_a.view(), sb, input, c, gopt);
  else
    gs = gemm_s8s32_conv_fused(plan.gemm_a.view(), sb, input, c, gopt);

  const bool tbl = plan.kernel == ArmKernel::kTblGemm;
  const BlockedLayout lay = blocked_layout(
      sb.gemm_m(), sb.gemm_n(), sb.gemm_k(), plan.blocking,
      plan.kernel == ArmKernel::kSdotExt, tbl ? plan.tbl_a.group : 0,
      tbl ? plan.tbl_a.orient : TblOrientation::kActTables);
  res.space.im2col_elems =
      blocked_threads(lay, plan.requested.threads, /*verify=*/false) *
      lay.block_elems();
  res.space.pack_extra_elems = gs.pack_extra_elems;
  res.counts.merge(gs.counts);
  double parallel_cycles = 0;
  for (const auto& tc : gs.thread_counts)
    parallel_cycles =
        std::max(parallel_cycles, cm.cycles_for(tc, gs.interleaved));
  res.cycles = parallel_cycles +
               cm.cycles_for(gs.serial_counts, gs.interleaved) +
               (gs.thread_counts.size() > 1 ? kThreadSyncCycles : 0.0);
  res.seconds = res.cycles / cm.freq_hz;
  return res;
}

StatusOr<ArmConvResult> conv2d_s32(const ConvShape& s, const Tensor<i8>& input,
                                   const Tensor<i8>& weight,
                                   const ArmConvOptions& opt) {
  auto plan_or = plan_conv(s, weight, opt);
  if (!plan_or.ok()) {
    if (plan_or.status().code() != StatusCode::kResourceExhausted)
      return plan_or.status();
    // Plan compilation failed: the ladder's floor needs no compiled state.
    const Shape4 want_in{s.batch, s.in_c, s.in_h, s.in_w};
    LBC_VALIDATE(input.shape() == want_in, kInvalidArgument,
                 "input tensor is " << shape4_str(input.shape())
                                    << " but the shape needs "
                                    << shape4_str(want_in));
    ArmConvResult res;
    res.space.baseline_elems = s.activation_elems() + s.weight_elems();
    res.fallback.record(algo_name(opt.algo), "reference",
                        plan_or.status().message());
    res.out = ref::conv2d_s32(s, input, weight);
    Ctx ref_ctx;
    ref_ctx.model_cache = false;
    tally_reference(ref_ctx, s);
    res.counts.merge(ref_ctx.counts);
    const CostModel cm = CostModel::cortex_a53();
    res.cycles = cm.cycles_for(ref_ctx.counts, /*interleaved=*/true);
    res.seconds = res.cycles / cm.freq_hz;
    res.executed_algo = "reference";
    return res;
  }
  Workspace ws;
  return execute_conv(*plan_or, input, ws);
}

}  // namespace lbc::armkern
