// Low-bit GEMM driver over the packed panels and micro kernels.
//
// This is the "re-designed GEMM computation" of paper Sec. 3.2: packing
// (Fig. 2) plus the per-bit-width instruction schemes (Fig. 3), dispatched
// by bit width — MLA scheme for 2-3 bit, SMLAL scheme for 4-8 bit — with
// the ncnn-style 8-bit baseline and the traditional (Fig. 1a) GEMM
// available for comparison.
//
// Two entry points:
//  * gemm_s8s32 — one-shot: packs both operands and multiplies.
//  * gemm_s8s32_prepacked / gemm_s8s32_sdot_prepacked — A (weights) was
//    packed once at plan-compile time; only B (activations) is packed here,
//    into opt.workspace when one is provided. Bit-exact with the one-shot
//    entry: the A pack is untallied by default (count_a_pack=false — weights
//    are packed offline in deployment), so moving it to plan time changes
//    neither the results nor the modeled cycle counts.
#pragma once

#include <functional>
#include <vector>

#include "armsim/cost_model.h"
#include "armsim/counters.h"
#include "armkern/blocking.h"
#include "armkern/pack.h"
#include "common/types.h"

namespace lbc {
class Workspace;
}  // namespace lbc

namespace lbc::armkern {

enum class ArmKernel {
  kOursGemm,     ///< the paper's re-designed GEMM with per-bit schemes
  kNcnn,         ///< ncnn-style 8-bit baseline (widen + 16-bit SMLAL)
  kTraditional,  ///< Fig. 1a inner-product GEMM (ablation)
  kSdotExt,      ///< ARMv8.2 SDOT kernel (extension; not on the v8.1 target)
  kTblGemm,      ///< TBL lookup-table scheme, 2-3 bit (DESIGN.md Sec. 16)
};

/// Epilogue hook of the blocked driver (the ARM twin of gpukern/fusion):
/// after a C row segment receives its final Kc accumulation, the driver
/// hands the still-cache-resident i32 accumulators to `fn` so requantize /
/// ReLU / residual-add can run before the rows are ever evicted — the
/// intermediate i32 tensor never round-trips through memory. `fn(row,
/// col0, cols, acc)` sees the final values C[row][col0 .. col0+cols);
/// it must not touch C outside that segment. Under multi-threaded runs
/// segments from disjoint jc column bands are delivered concurrently, so
/// `fn` must only write per-(row, col) outputs. The driver tallies the
/// epilogue's fixed-point math and i8 stores into the calling worker's
/// counters; the bytes written to `out_base` (when set) go through the
/// cache model so the fused traffic is measured, not asserted.
struct TileEpilogue {
  std::function<void(i64 row, i64 col0, i64 cols, const i32* acc)> fn;
  /// i8 output buffer the epilogue writes, laid out out[row * row_stride +
  /// col] (row_stride in elements, normally the GEMM n). Optional, but when
  /// set the driver feeds the written bytes through the cache model and
  /// registers the region with an active verifier, so the fused path's
  /// store traffic is measured, not asserted.
  i8* out_base = nullptr;
  i64 row_stride = 0;
  i64 out_rows = 0;  ///< rows the epilogue covers (region registration)
};

struct GemmOptions {
  int bits = 8;
  ArmKernel kernel = ArmKernel::kOursGemm;
  int threads = 1;
  /// Weights are packed offline in deployment, so A-pack cost is excluded
  /// by default; activation (B) packing is always on the critical path.
  bool count_a_pack = false;
  /// Non-zero: override the SADDW flush interval of the SMLAL scheme.
  /// Used by the winograd path, whose operand ranges (4x activations,
  /// 9/4 weights) shrink the safe ratio below the raw-bit-width table.
  int flush_override = 0;
  /// When set, per-call scratch (the packed-B panels) comes from this arena
  /// instead of fresh heap allocations. The arena must outlive the call;
  /// the caller resets it between executions.
  Workspace* workspace = nullptr;
  /// Checked execution (armsim/verifier.h): every Ctx this call creates
  /// carries the verifier, operand regions are registered with the value
  /// ranges below, and the panel loop is forced to threads = 1 so reported
  /// instruction indices are deterministic.
  armsim::Verifier* verifier = nullptr;
  /// Max |value| the A / B operands can hold, seeding the overflow interval
  /// analysis. 0 derives the bound from `bits` (qmax_for_bits); the
  /// winograd path passes its transformed-operand ranges here, since it
  /// runs the GEMM with bits = 8 + flush_override.
  i32 a_max_abs = 0;
  i32 b_max_abs = 0;
  /// Mc/Kc/Nc cache blocking (blocking.h). Disabled (the default) keeps
  /// the legacy unblocked full-K sweep; enabled routes kOursGemm / kNcnn /
  /// kSdotExt through the blocked driver (gemm_blocked.cpp), which packs
  /// one Kc x Nc B block at a time and accumulates partial-K products into
  /// C — bit-exact with the unblocked sweep. Ignored by kTraditional.
  GemmBlocking blocking;
  /// Fused epilogue (blocked driver only): invoked on each C row segment
  /// right after its final Kc accumulation. nullptr = no epilogue.
  const TileEpilogue* epilogue = nullptr;
};

struct GemmStats {
  armsim::Counters counts;   ///< total instruction mix (all threads + pack)
  i64 pack_extra_elems = 0;  ///< padding bytes added by pack (Fig. 13)
  bool interleaved = true;   ///< whether the kernel interleaves LD/MAC

  /// Timing decomposition for the multicore model: the packing pre-pass is
  /// serial; the panel loop splits across threads. Single-threaded runs
  /// have exactly one entry in thread_counts.
  armsim::Counters serial_counts;
  std::vector<armsim::Counters> thread_counts;
};

/// C[M x N] (i32, row-major) = A[M x K] (i8, row-major) * B[K x N]
/// (i8, row-major). Bit-exact with ref::gemm_s8s32 for inputs within the
/// adjusted range of `bits`.
GemmStats gemm_s8s32(const i8* a, const i8* b, i32* c, i64 m, i64 n, i64 k,
                     const GemmOptions& opt);

/// Same computation with A already packed (kOursGemm / kNcnn kernels).
/// `pa` must have been packed from an M x K matrix matching (m, k).
GemmStats gemm_s8s32_prepacked(const APanels& pa, const i8* b, i32* c, i64 m,
                               i64 n, i64 k, const GemmOptions& opt);

/// SDOT variant with A already packed (kSdotExt kernel).
GemmStats gemm_s8s32_sdot_prepacked(const SdotAPanels& pa, const i8* b,
                                    i32* c, i64 m, i64 n, i64 k,
                                    const GemmOptions& opt);

/// Fused-pack blocked conv GEMM: C[M x N] = A * im2col(input), where the
/// im2col matrix is never materialized — each Kc x Nc B block is gathered
/// straight from `input` (pack_b_panels_from_conv) into an L1-resident
/// scratch block. `input` is the raw NCHW i8 activation buffer of
/// s.batch * s.in_c * s.in_h * s.in_w elements (a Tensor's data() or a
/// graph arena slot). Requires opt.blocking.enabled(); geometry (m, n, k)
/// is the GEMM view of `s`. Bit-exact with running gemm_s8s32_prepacked
/// over a materialized im2col matrix.
GemmStats gemm_s8s32_conv_fused(const APanels& pa, const ConvShape& s,
                                const i8* input, i32* c,
                                const GemmOptions& opt);

/// SDOT variant of the fused-pack blocked conv GEMM.
GemmStats gemm_s8s32_sdot_conv_fused(const SdotAPanels& pa, const ConvShape& s,
                                     const i8* input, i32* c,
                                     const GemmOptions& opt);

/// TBL variant of the fused-pack blocked conv GEMM (kTblGemm): the per-
/// block online pack builds product tables (kActTables) or index panels
/// (kWeightTables) straight from the conv input. Requires
/// opt.blocking.enabled() and ta packed from the (m, k) weight matrix.
GemmStats gemm_s8s32_tbl_conv_fused(const TblAPanels& ta, const ConvShape& s,
                                    const i8* input, i32* c,
                                    const GemmOptions& opt);

/// Traditional GEMM used by the ablation bench (declared here, defined in
/// gemm_traditional.cpp); B is consumed column-major-packed internally.
void gemm_traditional(armsim::Ctx& ctx, int bits, const i8* a, const i8* b,
                      i32* c, i64 m, i64 n, i64 k);

}  // namespace lbc::armkern
