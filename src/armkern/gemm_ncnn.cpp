#include "armkern/micro.h"

namespace lbc::armkern {

using namespace armsim;

// ncnn's 8-bit scheme per the paper (Sec. 5.2): "it stores the 8-bit input
// into a 16-bit register, and uses 16-bit SMLAL instruction to compute and
// accumulate the result to a 32-bit register." No intermediate flushes,
// but every operand is widened (SSHLL) and each SMLAL covers only 4 lanes.
void micro_ncnn_16x4(Ctx& ctx, const i8* a_panel, const i8* b_panel, i64 kc,
                     i32* c) {
  // Checked-execution contract: accumulation goes straight into 32-bit
  // lanes (no flush interval); 2 loads feed 16 SMLAL16s -> CAL/LD 8.0.
  const VerifyScope vs(ctx, KernelSpec{.name = "micro_ncnn_16x4",
                                       .cal_ld_min = 7.0,
                                       .cal_ld_max = 9.0});
  int32x4 acc32[kNr][4];
  for (int j = 0; j < kNr; ++j)
    for (int g = 0; g < 4; ++g) movi_zero(ctx, acc32[j][g]);

  constexpr i64 kUnroll = 4;  // ncnn's typical inner unrolling
  for (i64 k = 0; k < kc; ++k) {
    int8x16 a;
    ld1_s8(ctx, a_panel + k * kMr, a);
    int16x8 a_lo, a_hi;
    sshll_s8(ctx, a_lo, a);   // rows 0-7 widened
    sshll2_s8(ctx, a_hi, a);  // rows 8-15 widened
    int8x16 b[4];
    ld4r_s8(ctx, b_panel + k * kNr, b);
    for (int j = 0; j < kNr; ++j) {
      int16x8 b16;
      sshll_s8(ctx, b16, b[j]);  // replicated, widened
      smlal_s16(ctx, acc32[j][0], a_lo, b16);
      smlal2_s16(ctx, acc32[j][1], a_lo, b16);
      smlal_s16(ctx, acc32[j][2], a_hi, b16);
      smlal2_s16(ctx, acc32[j][3], a_hi, b16);
    }
    if (k % kUnroll == kUnroll - 1) ctx.tally(Op::kLoop);
  }

  for (int j = 0; j < kNr; ++j)
    for (int g = 0; g < 4; ++g)
      st1_s32(ctx, acc32[j][g], c + j * kMr + g * 4);
}

}  // namespace lbc::armkern
