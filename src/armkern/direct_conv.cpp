#include "armkern/direct_conv.h"

#include <algorithm>
#include "common/status.h"

#include "armsim/neon.h"

namespace lbc::armkern {

using namespace armsim;

DirectConvStats direct_conv_s32(const ConvShape& s, const Tensor<i8>& input,
                                const Tensor<i8>& weight, Tensor<i32>& out,
                                armsim::Verifier* verifier) {
  LBC_CHECK_MSG(s.valid(), "direct_conv: invalid conv shape");
  DirectConvStats stats;
  Ctx ctx;
  ctx.verifier = verifier;
  const i64 oh = s.out_h(), ow = s.out_w();
  out = Tensor<i32>(Shape4{s.batch, s.out_c, oh, ow}, 0);
  if (verifier != nullptr) {
    // The modeled gather span (vec * stride from a clamped start) can run
    // past the tensor end by up to 15 bytes — slack, not a real overread.
    verifier->add_region(input.data(), input.elems(), "direct conv input",
                         -128, 127, /*overread_slack=*/16);
    verifier->add_region(out.data(), out.elems() * static_cast<i64>(sizeof(i32)),
                         "direct conv output");
  }
  const VerifyScope vs(ctx, KernelSpec{.name = "direct_conv"});

  for (i64 b = 0; b < s.batch; ++b)
    for (i64 oc = 0; oc < s.out_c; ++oc)
      for (i64 y = 0; y < oh; ++y) {
        for (i64 x0 = 0; x0 < ow; x0 += 8) {
          const i64 vec = std::min<i64>(8, ow - x0);  // lanes in this block
          int32x4 acc_lo, acc_hi;
          movi_zero(ctx, acc_lo);
          movi_zero(ctx, acc_hi);
          for (i64 ic = 0; ic < s.in_c; ++ic)
            for (i64 kh = 0; kh < s.kernel; ++kh) {
              const i64 ih = y * s.stride + kh - s.pad;
              if (ih < 0 || ih >= s.in_h) continue;
              for (i64 kw = 0; kw < s.kernel; ++kw) {
                // Gather up to 8 input pixels for outputs x0..x0+vec-1.
                int8x16 pix{};
                bool any = false;
                for (i64 v = 0; v < vec; ++v) {
                  const i64 iw = (x0 + v) * s.stride + kw - s.pad;
                  if (iw < 0 || iw >= s.in_w) continue;
                  pix.v[static_cast<size_t>(v)] = input.at(b, ic, ih, iw);
                  any = true;
                }
                if (!any) continue;
                def_reg(ctx, pix, -128, 127);  // C++ gather, not an instr
                // Load cost: contiguous for stride 1 (one 8-byte load),
                // strided gather for stride 2 (two 8-byte loads).
                ctx.tally(Op::kLd1_64, s.stride == 1 ? 1 : 2);
                const i64 iw0 = x0 * s.stride + kw - s.pad;
                const i64 iw_clamped = std::min<i64>(std::max<i64>(iw0, 0),
                                                     s.in_w - 1);
                ctx.mem(&input.at(b, ic, ih, iw_clamped),
                        static_cast<u64>(vec) * static_cast<u64>(s.stride));
                // Widen pixels, broadcast the weight, SMLAL into 32-bit.
                int16x8 p16;
                sshll_s8(ctx, p16, pix);
                int16x8 w16;
                dup_s16(ctx, w16, static_cast<i16>(weight.at(oc, ic, kh, kw)));
                smlal_s16(ctx, acc_lo, p16, w16);
                smlal2_s16(ctx, acc_hi, p16, w16);
              }
            }
          // Store the 8 outputs (two ST1.4S).
          i32 lanes[8];
          for (int i = 0; i < 4; ++i) {
            lanes[i] = acc_lo.v[static_cast<size_t>(i)];
            lanes[4 + i] = acc_hi.v[static_cast<size_t>(i)];
          }
          ctx.tally(Op::kSt1, 2);
          ctx.mem(&out.at(b, oc, y, x0), static_cast<u64>(vec) * 4);
          for (i64 v = 0; v < vec; ++v)
            out.at(b, oc, y, x0 + v) = lanes[v];
          ctx.tally(Op::kLoop);
        }
      }
  stats.counts = ctx.counts;
  return stats;
}

}  // namespace lbc::armkern
