#include "armkern/micro.h"

namespace lbc::armkern {

using namespace armsim;

void micro_mla_16x4(Ctx& ctx, const i8* a_panel, const i8* b_panel, i64 kc,
                    int flush8, i32* c) {
  // Checked-execution contract: the MLA scheme's 8-bit flush interval, the
  // eight x0~x7 spill slots, and the Sec. 3.4 CAL/LD ratio (2.0).
  const VerifyScope vs(ctx, KernelSpec{.name = "micro_mla_16x4",
                                       .acc8_flush = flush8,
                                       .spill_slots = 8,
                                       .cal_ld_min = 1.5,
                                       .cal_ld_max = 2.5});
  // Register plan (Sec. 3.3): v0~v3 read A, v4~v7 read B, v8~v11 hold
  // 8-bit partials, v12~v19 hold 16-bit partials, v20~v31 + x0~x7 hold
  // the 32-bit results.
  int8x16 acc8[kNr];
  int16x8 acc16[kNr][2];
  int32x4 acc32[kNr][4];
  for (int j = 0; j < kNr; ++j) {
    movi_zero(ctx, acc8[j]);
    movi_zero(ctx, acc16[j][0]);
    movi_zero(ctx, acc16[j][1]);
    for (int g = 0; g < 4; ++g) movi_zero(ctx, acc32[j][g]);
  }

  auto flush_16_to_32 = [&] {
    mov_vx(ctx, 8);  // x0~x7 round trip for the spilled 32-bit accumulators
    for (int j = 0; j < kNr; ++j) {
      saddw_s16(ctx, acc32[j][0], acc16[j][0]);
      saddw2_s16(ctx, acc32[j][1], acc16[j][0]);
      saddw_s16(ctx, acc32[j][2], acc16[j][1]);
      saddw2_s16(ctx, acc32[j][3], acc16[j][1]);
      movi_zero(ctx, acc16[j][0]);
      movi_zero(ctx, acc16[j][1]);
    }
  };

  i64 k = 0;
  int rounds = 0;
  while (k < kc) {
    const i64 steps = std::min<i64>(flush8, kc - k);
    for (i64 s = 0; s < steps; ++s) {
      int8x16 a;
      ld1_s8(ctx, a_panel + (k + s) * kMr, a);
      int8x16 b[4];
      ld4r_s8(ctx, b_panel + (k + s) * kNr, b);
      for (int j = 0; j < kNr; ++j) mla_s8(ctx, acc8[j], a, b[j]);
    }
    // First-level SADDW flush: 8-bit partials -> 16-bit partials.
    for (int j = 0; j < kNr; ++j) {
      saddw_s8(ctx, acc16[j][0], acc8[j]);
      saddw2_s8(ctx, acc16[j][1], acc8[j]);
      movi_zero(ctx, acc8[j]);
    }
    ctx.tally(Op::kLoop);
    k += steps;
    if (++rounds == kSecondLevelRounds) {
      flush_16_to_32();
      rounds = 0;
    }
  }
  if (rounds != 0) flush_16_to_32();

  for (int j = 0; j < kNr; ++j)
    for (int g = 0; g < 4; ++g)
      st1_s32(ctx, acc32[j][g], c + j * kMr + g * 4);
}

}  // namespace lbc::armkern
