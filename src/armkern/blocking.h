// Mc/Kc/Nc cache blocking for the re-designed low-bit GEMM.
//
// The unblocked driver sweeps every A panel against every full-K B panel,
// so on ResNet-50 shapes the packed B working set (K x N bytes) blows past
// the modeled 32 KB L1 / 512 KB L2 and kL1Miss/kL2Miss stalls dominate the
// Cortex-A53 breakdown. The blocked loop nest follows the BLIS hierarchy
// used by QNNPACK-class low-bit engines:
//
//   for jc over Nc column blocks            (threading dimension)
//     for kcb over Kc depth blocks          (pack ONE Kc x Nc B block)
//       for icb over Mc row blocks
//         for p, q micro tiles              (16 x 4 kernels, C += tile)
//
// sized so the packed B block (Kc x Nc) stays L1-resident across the whole
// A sweep and the A panel slices for one Kc block (m_pad x Kc) are reused
// from L2. Partial-K products accumulate into C in plain i32 adds, so the
// result is bit-exact with the unblocked full-K sweep in any block order.
//
// This header only resolves geometry; the driver lives in gemm_blocked.cpp
// and the {Mc, Kc, Nc} auto-search in tile_search.cpp. workspace sizing
// (conv_arm.cpp) and the driver share BlockedLayout so the Workspace
// high-water mark stays exact.
#pragma once

#include <algorithm>

#include "armkern/schemes.h"
#include "common/types.h"

namespace lbc::armkern {

/// Cache-blocking parameters. Disabled (all zero) selects the legacy
/// unblocked full-K sweep. When enabled: mc is a multiple of kMr, nc a
/// multiple of kNr, kc positive (and a multiple of 4 whenever the SDOT
/// layout splits K into more than one block).
struct GemmBlocking {
  i64 mc = 0, kc = 0, nc = 0;

  bool enabled() const { return mc > 0 && kc > 0 && nc > 0; }
  bool operator==(const GemmBlocking&) const = default;
};

/// Clamp a candidate to the problem and the micro-tile grid: mc to
/// [kMr, m_pad] (multiple of kMr), nc to [kNr, n_pad] (multiple of kNr),
/// kc to [1, k] — rounded down to a multiple of 4 for the SDOT layout when
/// K still splits into more than one block (every non-final block must end
/// on a 4-depth SDOT group), and likewise to a multiple of the TBL pair
/// group so no index pair straddles a depth-block boundary.
inline GemmBlocking clamp_blocking(GemmBlocking b, i64 m, i64 n, i64 k,
                                   bool sdot, int tbl_group = 0) {
  if (!b.enabled()) return b;
  const i64 m_pad = round_up(m, kMr);
  const i64 n_pad = round_up(n, kNr);
  b.mc = round_up(std::clamp<i64>(b.mc, kMr, m_pad), kMr);
  b.nc = round_up(std::clamp<i64>(b.nc, kNr, n_pad), kNr);
  b.kc = std::clamp<i64>(b.kc, 1, k);
  if (sdot && b.kc < k) b.kc = std::max<i64>(4, b.kc - (b.kc % 4));
  if (tbl_group > 1 && b.kc < k)
    b.kc = std::max<i64>(tbl_group, b.kc - (b.kc % tbl_group));
  return b;
}

/// Heuristic fallback when no search result is available: a B block of
/// Kc x Nc = 256 x 64 (16 KB) stays under half the modeled 32 KB L1, and
/// Mc = 128 keeps the per-Kc A slice well inside the 512 KB L2.
inline GemmBlocking default_blocking(i64 m, i64 n, i64 k, bool sdot) {
  return clamp_blocking(GemmBlocking{128, 256, 64}, m, n, k, sdot);
}

/// Resolved loop-nest geometry for one (m, n, k) problem under a clamped
/// blocking. Shared by the blocked driver, workspace sizing, and the tile
/// search so every consumer agrees on block counts and scratch bytes.
struct BlockedLayout {
  GemmBlocking blk;  ///< clamped parameters
  i64 m = 0, n = 0, k = 0;
  i64 m_pad = 0, n_pad = 0;
  i64 m_blocks = 0, n_blocks = 0, k_blocks = 0;
  bool sdot = false;
  /// TBL layout: depth positions per index (> 0 selects TBL; 1 or 2).
  int tbl_group = 0;
  TblOrientation tbl_orient = TblOrientation::kActTables;

  bool tbl() const { return tbl_group > 0; }
  i64 m_panels() const { return m_pad / kMr; }
  i64 nc_eff(i64 jc) const { return std::min(blk.nc, n - jc * blk.nc); }
  i64 kc_eff(i64 kcb) const { return std::min(blk.kc, k - kcb * blk.kc); }
  i64 tbl_groups(i64 kcb) const {
    return ceil_div(kc_eff(kcb), static_cast<i64>(tbl_group));
  }
  /// Packed-B depth stride of one block: bytes per B-panel column (SDOT
  /// pads depth to 4; TBL kActTables stores a 16-entry table per group
  /// step, kWeightTables one index byte per group step).
  i64 k_stride(i64 kcb) const {
    if (tbl())
      return tbl_orient == TblOrientation::kActTables ? tbl_groups(kcb) * 16
                                                      : tbl_groups(kcb);
    return sdot ? round_up(kc_eff(kcb), 4) : kc_eff(kcb);
  }
  /// Scratch elements (= bytes, i8) of one thread's B-block buffer, sized
  /// for the largest block.
  i64 block_elems() const {
    if (tbl()) {
      const i64 groups = ceil_div(blk.kc, static_cast<i64>(tbl_group));
      return tbl_orient == TblOrientation::kActTables
                 ? round_up(blk.nc, kNr) * groups * 16
                 : round_up(blk.nc, i64{16}) * groups;
    }
    return round_up(blk.nc, kNr) * (sdot ? round_up(blk.kc, 4) : blk.kc);
  }
  i64 block_bytes() const { return block_elems(); }
};

inline BlockedLayout blocked_layout(
    i64 m, i64 n, i64 k, const GemmBlocking& blocking, bool sdot,
    int tbl_group = 0,
    TblOrientation tbl_orient = TblOrientation::kActTables) {
  BlockedLayout l;
  l.blk = clamp_blocking(blocking, m, n, k, sdot, tbl_group);
  l.m = m;
  l.n = n;
  l.k = k;
  l.m_pad = round_up(m, kMr);
  l.n_pad = round_up(n, kNr);
  l.sdot = sdot;
  l.tbl_group = tbl_group;
  l.tbl_orient = tbl_orient;
  l.m_blocks = ceil_div(l.m_pad, l.blk.mc);
  l.n_blocks = ceil_div(n, l.blk.nc);
  l.k_blocks = ceil_div(k, l.blk.kc);
  return l;
}

/// Worker count of the blocked driver: jc column blocks split across
/// threads (disjoint C column bands); checked execution forces one thread
/// so instruction indices stay deterministic.
inline int blocked_threads(const BlockedLayout& l, int threads, bool verify) {
  if (verify) return 1;
  return std::max(1, std::min<int>(threads, static_cast<int>(l.n_blocks)));
}

}  // namespace lbc::armkern
