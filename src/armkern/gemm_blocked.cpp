// Mc/Kc/Nc cache-blocked GEMM driver (blocking.h) for the low-bit micro
// kernels, with fused im2col packing on the conv path.
//
// Loop nest (BLIS order, QNNPACK-style for low-bit):
//   jc  — Nc column blocks; the threading dimension (disjoint C bands)
//   kcb — Kc depth blocks; ONE Kc x Nc B block is packed per (jc, kcb)
//         into a small reusable scratch buffer that stays L1-resident
//   icb — Mc row blocks; the A panel slices for this Kc block re-stream
//         from L2 instead of DRAM
//   p,q — 16 x 4 micro tiles
//
// The micro kernels are unchanged: they zero their accumulators and
// overwrite the column-major scratch tile, so the driver scatter assigns
// on the first K block and accumulates (plain i32 adds) afterwards —
// bit-exact with the unblocked full-K sweep in any block order. The
// accumulate's extra C re-load/add per tile row is tallied; the first
// block's stores ride on the micro kernel's ST1s exactly like the
// unblocked scatter.
//
// Under checked execution the per-(jc, kcb) B block is re-registered with
// the verifier before each pack (same-start registration replaces), so
// bounds always describe the live block extent.
#include <cstring>
#include <vector>

#include "armkern/gemm_blocked.h"

#include "armkern/micro.h"
#include "armsim/verifier.h"
#include "common/status.h"
#include "common/workspace.h"
#include "serve/thread_pool.h"

namespace lbc::armkern {

using namespace armsim;

namespace {

// Per-call scratch: from the caller's arena when one is plumbed through,
// otherwise a fresh aligned heap block (mirrors gemm_lowbit.cpp).
i8* block_scratch(const GemmOptions& opt, AlignedVector<i8>& own, i64 bytes) {
  if (opt.workspace != nullptr) return opt.workspace->alloc_n<i8>(bytes);
  own.resize(static_cast<size_t>(bytes));
  return own.data();
}

// Where packed-B blocks come from: a row-major K x N matrix, or (fused
// path) the raw conv input buffer through the im2col mapping.
struct BSource {
  const i8* b = nullptr;
  const ConvShape* shape = nullptr;
  const i8* input = nullptr;
};

// kWeightTables inner sweep for one packed (jc, kcb) block: 4 x 16
// row-major tiles (a slot is a C row, a lane a C column) against the
// offline weight tables, with the same assign/accumulate + fused-epilogue
// discipline as the column-major sweep below.
void run_tbl_wt_block(Ctx& ctx, const TblAPanels& ta, i32* c,
                      const BlockedLayout& lay, const GemmOptions& opt,
                      const i8* buf, i32* tile, i64 n0, i64 nc, i64 k0,
                      i64 kcb) {
  const i64 groups_c = lay.tbl_groups(kcb);
  const i64 nc_pad16 = round_up(nc, i64{16});
  const i64 p4_total = ceil_div(lay.m, i64{4});
  const i64 panels4_per_mc = lay.blk.mc / 4;
  for (i64 icb = 0; icb < lay.m_blocks; ++icb) {
    const i64 p0 = icb * panels4_per_mc;
    const i64 p1 = std::min<i64>(p4_total, p0 + panels4_per_mc);
    for (i64 p = p0; p < p1; ++p) {
      const i8* tbl_slice =
          ta.table_panel(p) + (k0 / lay.tbl_group) * 4 * 16;
      for (i64 q = 0; q < nc_pad16 / 16; ++q) {
        const u8* idx_panel =
            reinterpret_cast<const u8*>(buf) + q * groups_c * 16;
        micro_tbl_16x4(
            ctx, idx_panel, tbl_slice, groups_c,
            tbl_flush_interval(opt.bits, lay.tbl_group == kTblPairGroup),
            tile);
        const i64 row0 = p * 4;
        const i64 col0 = n0 + q * 16;
        const i64 rows = std::min<i64>(4, lay.m - row0);
        const i64 cols = std::min<i64>(16, lay.n - col0);
        for (i64 ii = 0; ii < rows; ++ii) {
          i32* crow = &c[(row0 + ii) * lay.n + col0];
          ctx.mem(crow, static_cast<u64>(cols) * 4);
          if (kcb == 0)
            for (i64 jj = 0; jj < cols; ++jj) crow[jj] = tile[ii * 16 + jj];
          else
            for (i64 jj = 0; jj < cols; ++jj) crow[jj] += tile[ii * 16 + jj];
        }
        if (kcb > 0 && rows > 0) {
          // Re-load + add of a 16-col i32 row span is four vectors.
          ctx.tally(Op::kLd1, static_cast<u64>(rows) * 4);
          ctx.tally(Op::kAdd, static_cast<u64>(rows) * 4);
        }
        if (kcb == lay.k_blocks - 1 && opt.epilogue != nullptr) {
          const TileEpilogue& epi = *opt.epilogue;
          for (i64 ii = 0; ii < rows; ++ii) {
            const i64 row = row0 + ii;
            epi.fn(row, col0, cols, &c[row * lay.n + col0]);
            if (epi.out_base != nullptr)
              ctx.mem(epi.out_base + row * epi.row_stride + col0,
                      static_cast<u64>(cols));
          }
          ctx.tally(Op::kScalar, static_cast<u64>(rows * cols) * 2);
          ctx.tally(Op::kSt1, static_cast<u64>(rows));
        }
      }
    }
  }
}

// One worker's share of jc blocks: pack each (jc, kcb) B block, sweep all
// A panels against it, scatter/accumulate into C.
void run_block_range(Ctx& ctx, const APanels* pa, const SdotAPanels* sa,
                     const TblAPanels* ta, const BSource& src, i32* c,
                     const BlockedLayout& lay, const GemmOptions& opt,
                     i8* buf, i64 jc0, i64 jc1) {
  const int bits = opt.bits;
  alignas(64) i32 tile[kMr * kNr] = {};
  if (ctx.verifier != nullptr)
    ctx.verifier->add_region(tile, sizeof(tile), "gemm C tile");
  const i32 qb = opt.b_max_abs > 0 ? opt.b_max_abs : qmax_for_bits(bits);
  const bool tbl_wt =
      lay.tbl() && lay.tbl_orient == TblOrientation::kWeightTables;
  const i64 panels_per_mc = lay.blk.mc / kMr;
  for (i64 jc = jc0; jc < jc1; ++jc) {
    const i64 n0 = jc * lay.blk.nc;
    const i64 nc = lay.nc_eff(jc);
    const i64 nc_pad = round_up(nc, kNr);
    for (i64 kcb = 0; kcb < lay.k_blocks; ++kcb) {
      const i64 k0 = kcb * lay.blk.kc;
      const i64 kc = lay.kc_eff(kcb);
      const i64 kstride = lay.k_stride(kcb);
      if (ctx.verifier != nullptr) {
        // Value bounds of the packed block: operand bytes by default, the
        // table-entry hull for online TBL tables, [0, 15] for TBL indices.
        i32 blo = -qb, bhi = qb;
        i64 bbytes = nc_pad * kstride;
        if (lay.tbl() && !tbl_wt) {
          const i32 bound =
              tbl_entry_bound(bits, lay.tbl_group == kTblPairGroup);
          blo = -bound;
          bhi = bound;
        } else if (tbl_wt) {
          blo = 0;
          bhi = 15;
          bbytes = round_up(nc, i64{16}) * kstride;
        }
        ctx.verifier->add_region(buf, bbytes, "packed B block", blo, bhi);
      }
      if (lay.tbl()) {
        if (!tbl_wt) {
          if (src.b != nullptr)
            pack_tbl_b_tables_block_into(&ctx, bits, lay.tbl_group, src.b,
                                         lay.k, lay.n, k0, kc, n0, nc, buf);
          else
            pack_tbl_b_tables_from_conv(&ctx, bits, lay.tbl_group, *src.shape,
                                        src.input, k0, kc, n0, nc, buf);
        } else {
          u8* idx_dst = reinterpret_cast<u8*>(buf);
          if (src.b != nullptr)
            pack_tbl_b_idx_block_into(&ctx, bits, lay.tbl_group, src.b,
                                      lay.k, lay.n, k0, kc, n0, nc, idx_dst);
          else
            pack_tbl_b_idx_from_conv(&ctx, bits, lay.tbl_group, *src.shape,
                                     src.input, k0, kc, n0, nc, idx_dst);
          run_tbl_wt_block(ctx, *ta, c, lay, opt, buf, tile, n0, nc, k0,
                           kcb);
          continue;
        }
      } else if (lay.sdot) {
        if (src.b != nullptr)
          pack_sdot_b_block_into(&ctx, src.b, lay.k, lay.n, k0, kc, n0, nc,
                                 buf);
        else
          pack_sdot_b_panels_from_conv(&ctx, *src.shape, src.input, k0, kc,
                                       n0, nc, buf);
      } else {
        if (src.b != nullptr)
          pack_b_block_into(&ctx, src.b, lay.k, lay.n, k0, kc, n0, nc, buf);
        else
          pack_b_panels_from_conv(&ctx, *src.shape, src.input, k0, kc, n0,
                                  nc, buf);
      }
      for (i64 icb = 0; icb < lay.m_blocks; ++icb) {
        const i64 p0 = icb * panels_per_mc;
        const i64 p1 = std::min<i64>(lay.m_panels(), p0 + panels_per_mc);
        for (i64 p = p0; p < p1; ++p) {
          // The packed-A K slice at depth k0 needs no repack: panel layout
          // is [K][kMr] (and [K4/4][kMr][4] for SDOT with k0 % 4 == 0, or
          // [groups][kMr] index bytes for TBL with k0 % group == 0), so
          // the slice is a plain pointer offset.
          const i8* a_slice =
              lay.tbl() ? nullptr
                        : (lay.sdot ? sa->panel(p) + k0 * kMr
                                    : pa->panel(p) + k0 * kMr);
          for (i64 q = 0; q < nc_pad / kNr; ++q) {
            const i8* b_panel = buf + q * kstride * kNr;
            switch (opt.kernel) {
              case ArmKernel::kOursGemm:
                if (opt.flush_override > 0)
                  micro_smlal_16x4(ctx, a_slice, b_panel, kc,
                                   opt.flush_override, tile);
                else if (bits <= 3)
                  micro_mla_16x4(ctx, a_slice, b_panel, kc,
                                 mla_flush_interval(bits), tile);
                else
                  micro_smlal_16x4(ctx, a_slice, b_panel, kc,
                                   smlal_flush_interval(bits), tile);
                break;
              case ArmKernel::kNcnn:
                micro_ncnn_16x4(ctx, a_slice, b_panel, kc, tile);
                break;
              case ArmKernel::kSdotExt:
                micro_sdot_16x4(ctx, a_slice, b_panel, kstride, tile);
                break;
              case ArmKernel::kTblGemm:
                // kActTables: weight indices from the offline pack, product
                // tables from the online block pack; a lane is a C row and
                // a slot a C column, matching the scatter below.
                micro_tbl_16x4(
                    ctx, ta->idx_panel(p) + (k0 / lay.tbl_group) * kMr,
                    b_panel, lay.tbl_groups(kcb),
                    tbl_flush_interval(bits, lay.tbl_group == kTblPairGroup),
                    tile);
                break;
              case ArmKernel::kTraditional:
                LBC_CHECK_MSG(false, "kernel has its own entry point");
                break;
            }
            const i64 row0 = p * kMr;
            const i64 col0 = n0 + q * kNr;
            const i64 rows = std::min<i64>(kMr, lay.m - row0);
            const i64 cols = std::min<i64>(kNr, lay.n - col0);
            for (i64 ii = 0; ii < rows; ++ii) {
              i32* crow = &c[(row0 + ii) * lay.n + col0];
              ctx.mem(crow, static_cast<u64>(cols) * 4);
              if (kcb == 0)
                for (i64 jj = 0; jj < cols; ++jj) crow[jj] = tile[jj * kMr + ii];
              else
                for (i64 jj = 0; jj < cols; ++jj)
                  crow[jj] += tile[jj * kMr + ii];
            }
            if (kcb > 0 && rows > 0) {
              // Accumulating a partial-K tile re-loads the C rows and adds
              // them in (the first K block's stores come free with the
              // micro kernel's ST1s, same as the unblocked scatter).
              ctx.tally(Op::kLd1, static_cast<u64>(rows));
              ctx.tally(Op::kAdd, static_cast<u64>(rows));
            }
            if (kcb == lay.k_blocks - 1 && opt.epilogue != nullptr) {
              // Fused epilogue: this segment just received its final Kc
              // accumulation and is still cache-resident — requantize /
              // ReLU / residual-add here instead of round-tripping the i32
              // tensor through memory. Cost: the fixed-point multiply +
              // clamp per element and the narrow i8 store per row.
              const TileEpilogue& epi = *opt.epilogue;
              for (i64 ii = 0; ii < rows; ++ii) {
                const i64 row = row0 + ii;
                epi.fn(row, col0, cols, &c[row * lay.n + col0]);
                if (epi.out_base != nullptr)
                  ctx.mem(epi.out_base + row * epi.row_stride + col0,
                          static_cast<u64>(cols));
              }
              ctx.tally(Op::kScalar, static_cast<u64>(rows * cols) * 2);
              ctx.tally(Op::kSt1, static_cast<u64>(rows));
            }
          }
        }
      }
    }
  }
}

GemmStats run_blocked(const APanels* pa, const SdotAPanels* sa,
                      const TblAPanels* ta, const BSource& src, i32* c,
                      i64 m, i64 n, i64 k, const GemmOptions& opt) {
  LBC_CHECK_MSG(opt.blocking.enabled(),
                "blocked GEMM driver called with blocking disabled");
  const bool sdot = sa != nullptr;
  const BlockedLayout lay = blocked_layout(
      m, n, k, opt.blocking, sdot, ta != nullptr ? ta->group : 0,
      ta != nullptr ? ta->orient : TblOrientation::kActTables);
  LBC_CHECK_MSG(!sdot || lay.k_blocks == 1 || lay.blk.kc % 4 == 0,
                "SDOT blocked Kc must be a multiple of 4");
  LBC_CHECK_MSG(!lay.tbl() || lay.k_blocks == 1 ||
                    lay.blk.kc % lay.tbl_group == 0,
                "TBL blocked Kc must be a multiple of the pair group");

  GemmStats stats;
  // Padding accounting matches the unblocked drivers: block partitioning
  // moves the padding around but adds none. The TBL layouts re-encode
  // rather than copy, so only the index-side padding bytes count.
  if (sdot)
    stats.pack_extra_elems =
        (sa->m_pad * sa->k_pad + lay.n_pad * round_up(k, 4)) - m * k - k * n;
  else if (ta != nullptr)
    stats.pack_extra_elems =
        lay.tbl_orient == TblOrientation::kActTables
            ? (ta->m_pad - m) * ta->groups()
            : (round_up(n, i64{16}) - n) * ta->groups();
  else
    stats.pack_extra_elems = pa->extra_elems() + (lay.n_pad * k - k * n);

  if (opt.verifier != nullptr) {
    const i32 qa = opt.a_max_abs > 0 ? opt.a_max_abs : qmax_for_bits(opt.bits);
    const i32 qb = opt.b_max_abs > 0 ? opt.b_max_abs : qmax_for_bits(opt.bits);
    if (sdot)
      opt.verifier->add_region(sa->data, sa->m_pad * sa->k_pad,
                               "packed SDOT A", -qa, qa);
    else if (ta != nullptr) {
      if (lay.tbl_orient == TblOrientation::kActTables)
        opt.verifier->add_region(ta->idx, ta->m_pad * ta->groups(),
                                 "packed TBL A indices", 0, 15);
      else {
        const i32 bound = tbl_entry_bound(
            opt.bits, ta->group == kTblPairGroup);
        opt.verifier->add_region(ta->tables, ta->m_pad * ta->groups() * 16,
                                 "packed TBL A tables", -bound, bound);
      }
    } else
      opt.verifier->add_region(pa->data, pa->m_pad * pa->k, "packed A panels",
                               -qa, qa);
    if (src.b != nullptr)
      opt.verifier->add_region(src.b, k * n, "gemm B", -qb, qb);
    opt.verifier->add_region(c, m * n * static_cast<i64>(sizeof(i32)),
                             "gemm C");
    if (opt.epilogue != nullptr && opt.epilogue->out_base != nullptr)
      opt.verifier->add_region(
          opt.epilogue->out_base,
          (opt.epilogue->out_rows > 0 ? opt.epilogue->out_rows : m) *
              opt.epilogue->row_stride,
          "fused epilogue out");
  }

  const int threads =
      blocked_threads(lay, opt.threads, opt.verifier != nullptr);
  // Per-thread B-block scratch, drawn from the arena up front (a Workspace
  // is single-owner, so all draws happen before the workers start).
  std::vector<AlignedVector<i8>> own(static_cast<size_t>(threads));
  std::vector<i8*> bufs(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t)
    bufs[static_cast<size_t>(t)] =
        block_scratch(opt, own[static_cast<size_t>(t)], lay.block_bytes());

  if (threads == 1) {
    Ctx ctx;
    ctx.verifier = opt.verifier;
    run_block_range(ctx, pa, sa, ta, src, c, lay, opt, bufs[0], 0,
                    lay.n_blocks);
    stats.counts = ctx.counts;
    stats.thread_counts = {ctx.counts};
  } else {
    // Column-band parallelism: each modeled worker owns a contiguous range
    // of jc blocks (a disjoint band of C columns) and its own Ctx + block
    // buffer. Packing is fused into the worker, so nothing stays serial.
    std::vector<Ctx> ctxs(static_cast<size_t>(threads));
    const i64 per = ceil_div(lay.n_blocks, threads);
    serve::ThreadPool::global().parallel_for(
        0, threads, 1, [&](i64 t0, i64 t1) {
          for (i64 t = t0; t < t1; ++t) {
            const i64 jc0 = t * per;
            const i64 jc1 = std::min<i64>(lay.n_blocks, jc0 + per);
            if (jc0 < jc1)
              run_block_range(ctxs[static_cast<size_t>(t)], pa, sa, ta, src,
                              c, lay, opt, bufs[static_cast<size_t>(t)], jc0,
                              jc1);
          }
        });
    for (const auto& cx : ctxs) {
      stats.counts.merge(cx.counts);
      stats.thread_counts.push_back(cx.counts);
    }
  }
  return stats;
}

}  // namespace

GemmStats gemm_blocked_prepacked(const APanels& pa, const i8* b, i32* c,
                                 i64 m, i64 n, i64 k, const GemmOptions& opt) {
  return run_blocked(&pa, nullptr, nullptr, BSource{b, nullptr, nullptr}, c,
                     m, n, k, opt);
}

GemmStats gemm_blocked_sdot_prepacked(const SdotAPanels& pa, const i8* b,
                                      i32* c, i64 m, i64 n, i64 k,
                                      const GemmOptions& opt) {
  return run_blocked(nullptr, &pa, nullptr, BSource{b, nullptr, nullptr}, c,
                     m, n, k, opt);
}

GemmStats gemm_blocked_tbl_prepacked(const TblAPanels& ta, const i8* b,
                                     i32* c, i64 m, i64 n, i64 k,
                                     const GemmOptions& opt) {
  LBC_CHECK_MSG(opt.kernel == ArmKernel::kTblGemm,
                "gemm_blocked_tbl_prepacked: kernel must be kTblGemm");
  LBC_CHECK_MSG(ta.m == m && ta.k == k,
                "gemm_blocked_tbl_prepacked: packed TBL A geometry mismatch");
  return run_blocked(nullptr, nullptr, &ta, BSource{b, nullptr, nullptr}, c,
                     m, n, k, opt);
}

GemmStats gemm_s8s32_conv_fused(const APanels& pa, const ConvShape& s,
                                const i8* input, i32* c,
                                const GemmOptions& opt) {
  LBC_CHECK_MSG(opt.kernel == ArmKernel::kOursGemm ||
                    opt.kernel == ArmKernel::kNcnn,
                "gemm_s8s32_conv_fused: kernel does not use packed A panels");
  const i64 m = s.gemm_m(), n = s.gemm_n(), k = s.gemm_k();
  LBC_CHECK_MSG(pa.m == m && pa.k == k,
                "gemm_s8s32_conv_fused: packed A geometry mismatch");
  return run_blocked(&pa, nullptr, nullptr, BSource{nullptr, &s, input}, c,
                     m, n, k, opt);
}

GemmStats gemm_s8s32_sdot_conv_fused(const SdotAPanels& pa, const ConvShape& s,
                                     const i8* input, i32* c,
                                     const GemmOptions& opt) {
  const i64 m = s.gemm_m(), n = s.gemm_n(), k = s.gemm_k();
  LBC_CHECK_MSG(pa.m == m && pa.k == k,
                "gemm_s8s32_sdot_conv_fused: packed A geometry mismatch");
  return run_blocked(nullptr, &pa, nullptr, BSource{nullptr, &s, input}, c,
                     m, n, k, opt);
}

GemmStats gemm_s8s32_tbl_conv_fused(const TblAPanels& ta, const ConvShape& s,
                                    const i8* input, i32* c,
                                    const GemmOptions& opt) {
  LBC_CHECK_MSG(opt.kernel == ArmKernel::kTblGemm,
                "gemm_s8s32_tbl_conv_fused: kernel must be kTblGemm");
  const i64 m = s.gemm_m(), n = s.gemm_n(), k = s.gemm_k();
  LBC_CHECK_MSG(ta.m == m && ta.k == k,
                "gemm_s8s32_tbl_conv_fused: packed TBL A geometry mismatch");
  return run_blocked(nullptr, nullptr, &ta, BSource{nullptr, &s, input}, c,
                     m, n, k, opt);
}

}  // namespace lbc::armkern
