// Instruction-scheme parameters for each bit width (paper Sec. 3.3).
//
// SMLAL scheme (4-8 bit): products of two b-bit values in the adjusted
// range [-(2^(b-1)-1), +(2^(b-1)-1)] accumulate in 16-bit lanes; a SADDW
// flush to 32-bit must happen before the 16-bit lane can overflow. The safe
// bound is floor((2^15 - 1) / qmax^2) SMLALs between flushes (the paper's
// 511/127/31/8/2 for 4..8-bit). The kernels actually flush at the paper's
// unrolling factors (32/24/16/8/2), each of which is within its safe bound.
//
// MLA scheme (2-3 bit): products accumulate in 8-bit lanes; the first-level
// SADDW (8->16) ratio is 31 (2-bit) and 7 (3-bit) per the paper, and a
// second-level SADDW (16->32) flush runs every kSecondLevelRounds first-
// level flushes (far inside the 16-bit headroom; asserted below).
#pragma once

#include "common/types.h"

namespace lbc::armkern {

/// Largest number of SMLAL.8H accumulations into a fresh 16-bit lane that
/// cannot overflow for b-bit inputs in the adjusted range.
constexpr int smlal_safe_ratio(int bits) {
  const i32 q = qmax_for_bits(bits);
  return static_cast<int>(32767 / (q * q));
}

/// Flush interval actually used by the 4-8 bit kernel (= the paper's loop
/// unrolling factor, Sec. 3.3: 32/24/16/8/2 for 4/5/6/7/8-bit).
constexpr int smlal_flush_interval(int bits) {
  switch (bits) {
    case 4: return 32;
    case 5: return 24;
    case 6: return 16;
    case 7: return 8;
    case 8: return 2;
    default: return 1;
  }
}
static_assert(smlal_flush_interval(4) <= smlal_safe_ratio(4));
static_assert(smlal_flush_interval(5) <= smlal_safe_ratio(5));
static_assert(smlal_flush_interval(6) <= smlal_safe_ratio(6));
static_assert(smlal_flush_interval(7) <= smlal_safe_ratio(7));
static_assert(smlal_flush_interval(8) <= smlal_safe_ratio(8));

/// MLA accumulations into a fresh 8-bit lane between 8->16-bit flushes
/// (paper: 31 for 2-bit, 7 for 3-bit).
constexpr int mla_flush_interval(int bits) { return bits == 2 ? 31 : 7; }

/// 8->16 flush rounds between 16->32-bit flushes in the MLA scheme.
constexpr int kSecondLevelRounds = 16;

// 16-bit headroom check: each first-level flush adds at most
// mla_flush * qmax^2 to a 16-bit lane.
static_assert(kSecondLevelRounds * mla_flush_interval(2) * 1 * 1 <= 32767);
static_assert(kSecondLevelRounds * mla_flush_interval(3) * 3 * 3 <= 32767);

/// Micro-tile geometry of the re-designed GEMM: n_a rows of A per LD1 and
/// n_b columns of B per LD4R (Sec. 3.2/3.3, Alg. 1).
constexpr i64 kMr = 16;  // rows per A panel (one 16-byte LD1)
constexpr i64 kNr = 4;   // cols per B panel (one LD4R)

}  // namespace lbc::armkern
