// Instruction-scheme parameters for each bit width (paper Sec. 3.3).
//
// SMLAL scheme (4-8 bit): products of two b-bit values in the adjusted
// range [-(2^(b-1)-1), +(2^(b-1)-1)] accumulate in 16-bit lanes; a SADDW
// flush to 32-bit must happen before the 16-bit lane can overflow. The safe
// bound is floor((2^15 - 1) / qmax^2) SMLALs between flushes (the paper's
// 511/127/31/8/2 for 4..8-bit). The kernels actually flush at the paper's
// unrolling factors (32/24/16/8/2), each of which is within its safe bound.
//
// MLA scheme (2-3 bit): products accumulate in 8-bit lanes; the first-level
// SADDW (8->16) ratio is 31 (2-bit) and 7 (3-bit) per the paper, and a
// second-level SADDW (16->32) flush runs every kSecondLevelRounds first-
// level flushes (far inside the 16-bit headroom; asserted below).
#pragma once

#include "common/types.h"

namespace lbc::armkern {

/// Largest number of SMLAL.8H accumulations into a fresh 16-bit lane that
/// cannot overflow for b-bit inputs in the adjusted range.
constexpr int smlal_safe_ratio(int bits) {
  const i32 q = qmax_for_bits(bits);
  return static_cast<int>(32767 / (q * q));
}

/// Flush interval actually used by the 4-8 bit kernel (= the paper's loop
/// unrolling factor, Sec. 3.3: 32/24/16/8/2 for 4/5/6/7/8-bit).
constexpr int smlal_flush_interval(int bits) {
  switch (bits) {
    case 4: return 32;
    case 5: return 24;
    case 6: return 16;
    case 7: return 8;
    case 8: return 2;
    default: return 1;
  }
}
static_assert(smlal_flush_interval(4) <= smlal_safe_ratio(4));
static_assert(smlal_flush_interval(5) <= smlal_safe_ratio(5));
static_assert(smlal_flush_interval(6) <= smlal_safe_ratio(6));
static_assert(smlal_flush_interval(7) <= smlal_safe_ratio(7));
static_assert(smlal_flush_interval(8) <= smlal_safe_ratio(8));

/// MLA accumulations into a fresh 8-bit lane between 8->16-bit flushes
/// (paper: 31 for 2-bit, 7 for 3-bit).
constexpr int mla_flush_interval(int bits) { return bits == 2 ? 31 : 7; }

/// 8->16 flush rounds between 16->32-bit flushes in the MLA scheme.
constexpr int kSecondLevelRounds = 16;

// 16-bit headroom check: each first-level flush adds at most
// mla_flush * qmax^2 to a 16-bit lane.
static_assert(kSecondLevelRounds * mla_flush_interval(2) * 1 * 1 <= 32767);
static_assert(kSecondLevelRounds * mla_flush_interval(3) * 3 * 3 <= 32767);

/// Micro-tile geometry of the re-designed GEMM: n_a rows of A per LD1 and
/// n_b columns of B per LD4R (Sec. 3.2/3.3, Alg. 1).
constexpr i64 kMr = 16;  // rows per A panel (one 16-byte LD1)
constexpr i64 kNr = 4;   // cols per B panel (one LD4R)

// ---------------------------------------------------------------------------
// TBL lookup-table scheme (2-3 bit; DESIGN.md Sec. 16)
//
// One side of the GEMM is re-encoded as byte INDICES into 16-entry product
// tables built from the other side; a single TBL.16B then answers 16
// products per cycle and one ADD.16B accumulates them in 8-bit lanes
// (entries are bounded by tbl_entry_bound, so tbl_flush_interval adds fit
// an i8 lane before the SSHLL/SADDW widen into the i32 tile). When the
// INDEX side holds only ternary values {-1,0,1} (always true at 2 bit;
// detected at pack time for 3-bit weights), TWO consecutive depth values
// are folded into one pair-class index, so each TBL answers 32 MACs.
//
// The scheme runs in one of two orientations, priced at plan time
// (tile_search::choose_tbl_orientation):
//  * kActTables  — weights are the index side (prepacked offline);
//    product tables are built ONLINE from activations during B-block
//    packing. Amortizes table-build over all m rows: wins at large m.
//  * kWeightTables — weights are the table side (tables built OFFLINE,
//    8x weight inflation); activations are encoded ONLINE as indices.
//    No online build cost: wins at small m, loses when the table set
//    outgrows L2.
// ---------------------------------------------------------------------------

/// Which GEMM side supplies the product tables (see block comment above).
enum class TblOrientation { kActTables, kWeightTables };

/// Depth positions folded per index for a given orientation: pair mode needs
/// the INDEX side ternary. kActTables indexes weights (ternary always at
/// 2-bit, detected for 3-bit — caller passes `weights_ternary`); kWeight-
/// Tables indexes activations (guaranteed ternary only at 2-bit).
constexpr int tbl_group_for(TblOrientation o, int bits, bool weights_ternary) {
  if (o == TblOrientation::kActTables) return (bits == 2 || weights_ternary) ? 2 : 1;
  return bits == 2 ? 2 : 1;
}

/// Depth positions folded into one index when the scheme runs in ternary
/// pair mode (vs 1 for the generic one-value-per-index form).
constexpr int kTblPairGroup = 2;


/// Ternary pair class of (v0, v1), both in {-1,0,1}:
///   idx = (v0+1)*4 + (v1+1)  in {0,1,2, 4,5,6, 8,9,10}.
/// idx % 4 == 3 and idx > 10 never occur; TBL's out-of-range zeroing makes
/// the unused tail of the 16-entry table harmless by construction.
constexpr u8 tbl_pair_index(i32 v0, i32 v1) {
  return static_cast<u8>((v0 + 1) * 4 + (v1 + 1));
}

/// The (0,0) pair class: the neutral padding index. Its table entry is 0 in
/// every table, so padded rows/cols and odd-K tails contribute nothing.
constexpr u8 kTblNeutralPairIndex = tbl_pair_index(0, 0);

/// Generic (non-ternary) single-value class: idx = v + qmax in [0, 2*qmax].
/// The table entry at qmax (value 0) is 0 — the generic neutral index.
constexpr u8 tbl_value_index(i32 v, int bits) {
  return static_cast<u8>(v + qmax_for_bits(bits));
}

/// Neutral padding index for the generic form (encodes value 0).
constexpr u8 tbl_generic_neutral_index(int bits) {
  return static_cast<u8>(qmax_for_bits(bits));
}

/// Largest |entry| any TBL product table can hold for b-bit operands:
/// ternary pair mode sums two {-1,0,1}-scaled operands (2*qmax), the
/// generic form holds one full product (qmax^2).
constexpr i32 tbl_entry_bound(int bits, bool ternary_pairs) {
  const i32 q = qmax_for_bits(bits);
  return ternary_pairs ? 2 * q : q * q;
}

/// ADD.16B accumulations of looked-up table entries into one fresh 8-bit
/// lane between the sshll/saddw flushes into the 32-bit accumulators. Each
/// add contributes one table entry, bounded by tbl_entry_bound above, so
/// the interval is the byte lane's headroom divided by that bound — the
/// same two-level accumulation trick the MLA scheme uses (Sec. 3.4), which
/// keeps the TBL scheme's per-step ALU work at one shuffle plus one byte
/// add instead of two widening adds.
constexpr int tbl_flush_interval(int bits, bool ternary_pairs) {
  return 127 / tbl_entry_bound(bits, ternary_pairs);
}

// Index ranges stay inside the single-register TBL's 16-entry window.
static_assert(tbl_pair_index(1, 1) == 10);
static_assert(kTblNeutralPairIndex == 5);
static_assert(tbl_value_index(3, 3) == 6);   // widest generic range (3-bit)
static_assert(tbl_pair_index(1, 1) < 16 && tbl_value_index(3, 3) < 16);
// Table entries fit i8 and the flush interval fits 8-bit lane headroom for
// every mode the scheme ships (2-3 bit, pair or generic).
static_assert(tbl_entry_bound(2, true) == 2 && tbl_entry_bound(3, true) == 6);
static_assert(tbl_entry_bound(3, false) == 9);
static_assert(tbl_entry_bound(3, false) <= 127);
static_assert(tbl_flush_interval(2, true) == 63);
static_assert(tbl_flush_interval(3, true) == 21);
static_assert(tbl_flush_interval(3, false) == 14);
static_assert(tbl_flush_interval(2, true) * tbl_entry_bound(2, true) <= 127);
static_assert(tbl_flush_interval(3, false) * tbl_entry_bound(3, false) <= 127);

/// Build one 16-entry product table for broadcast operands (b0, b1) of the
/// non-index side: in pair mode out[idx] = d0(idx)*b0 + d1(idx)*b1 over the
/// decoded ternary pair (d0, d1); in generic mode out[idx] = (idx-qmax)*b0
/// (b1 ignored). Invalid indices get 0. Shared by both pack orientations
/// and the kernel prover's exhaustive table check.
void tbl_build_table(int bits, bool ternary_pairs, i8 b0, i8 b1, i8 out[16]);

}  // namespace lbc::armkern
