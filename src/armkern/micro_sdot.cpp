#include "armkern/micro.h"

namespace lbc::armkern {

using namespace armsim;

// ARMv8.2 SDOT extension kernel (not available on the paper's v8.1 target;
// see Sec. 2.3). One indexed SDOT (Vd.4S, Vn.16B, Vm.4B[lane]) retires 16
// MACs straight into 32-bit accumulators with no widening chain at all:
// per 4-depth step the 16x4 tile costs 5 loads + 16 SDOTs for 256 MACs.
// The ext_sdot bench quantifies how this erases the need for bit-width-
// specific schemes on v8.2 cores.
void micro_sdot_16x4(Ctx& ctx, const i8* a_panel, const i8* b_panel, i64 k_pad,
                     i32* c) {
  // Checked-execution contract: SDOT accumulates straight into 32-bit lanes
  // (no flush interval to declare); 5 loads + 16 SDOTs per step -> 3.2.
  const VerifyScope vs(ctx, KernelSpec{.name = "micro_sdot_16x4",
                                       .cal_ld_min = 3.0,
                                       .cal_ld_max = 3.4});
  int32x4 acc[kNr][4];  // [col][row group of 4]
  for (int j = 0; j < kNr; ++j)
    for (int g = 0; g < 4; ++g) movi_zero(ctx, acc[j][g]);

  const i64 ksteps = k_pad / 4;
  for (i64 ks = 0; ks < ksteps; ++ks) {
    int8x16 a[4];
    for (int g = 0; g < 4; ++g)
      ld1_s8(ctx, a_panel + (ks * kMr + g * 4) * 4, a[g]);
    int8x16 b;
    ld1_s8(ctx, b_panel + ks * kNr * 4, b);
    for (int j = 0; j < kNr; ++j) {
      // Indexed form: broadcast b's 4-byte group j across the register
      // (free in hardware; no extra instruction tallied).
      int8x16 bj;
      for (int g = 0; g < 4; ++g)
        for (int d = 0; d < 4; ++d) bj.v[4 * g + d] = b.v[4 * j + d];
      def_like(ctx, bj, b);
      for (int g = 0; g < 4; ++g) sdot_s8(ctx, acc[j][g], a[g], bj);
    }
    if (ks % 4 == 3) ctx.tally(Op::kLoop);
  }

  for (int j = 0; j < kNr; ++j)
    for (int g = 0; g < 4; ++g) st1_s32(ctx, acc[j][g], c + j * kMr + g * 4);
}

}  // namespace lbc::armkern
