#include "armkern/micro.h"

namespace lbc::armkern {

using namespace armsim;

void micro_smlal_16x4(Ctx& ctx, const i8* a_panel, const i8* b_panel, i64 kc,
                      int flush, i32* c) {
  // Checked-execution contract: the SMLAL scheme's flush interval, the four
  // x-register spill slots of Alg. 1, and the Fig. 1b CAL/LD ratio (4.0).
  const VerifyScope vs(ctx, KernelSpec{.name = "micro_smlal_16x4",
                                       .acc16_flush = flush,
                                       .spill_slots = 4,
                                       .cal_ld_min = 3.5,
                                       .cal_ld_max = 4.5});
  // Register plan mirrors Alg. 1: v0~v1 read A, v2~v9 read B (two LD4R
  // groups interleaved with the SMLALs for prefetching), v10~v17 hold the
  // 16-bit partials, v18~v31 plus four x-register spills hold the 32-bit
  // results. The emulator has unlimited registers; the spill traffic is
  // charged via mov_vx.
  int32x4 acc32[kNr][4];
  int16x8 acc16[kNr][2];
  for (int j = 0; j < kNr; ++j) {
    for (int g = 0; g < 4; ++g) movi_zero(ctx, acc32[j][g]);
    movi_zero(ctx, acc16[j][0]);
    movi_zero(ctx, acc16[j][1]);
  }

  i64 k = 0;
  while (k < kc) {
    const i64 steps = std::min<i64>(flush, kc - k);
    // Two interleaved {LD1, LD4R} + SMLAL(2) groups per iteration (Alg. 1
    // lines 3-8); the odd tail falls out naturally.
    for (i64 s = 0; s < steps; ++s) {
      int8x16 a;
      ld1_s8(ctx, a_panel + (k + s) * kMr, a);
      int8x16 b[4];
      ld4r_s8(ctx, b_panel + (k + s) * kNr, b);
      for (int j = 0; j < kNr; ++j) {
        smlal_s8(ctx, acc16[j][0], a, b[j]);
        smlal2_s8(ctx, acc16[j][1], a, b[j]);
      }
    }
    // SADDW flush of the 16-bit partials into the 32-bit accumulators
    // (Alg. 1 lines 10-13), including the x-register round trip for the
    // accumulators that do not fit in v18~v31.
    mov_vx(ctx, 4);
    for (int j = 0; j < kNr; ++j) {
      saddw_s16(ctx, acc32[j][0], acc16[j][0]);
      saddw2_s16(ctx, acc32[j][1], acc16[j][0]);
      saddw_s16(ctx, acc32[j][2], acc16[j][1]);
      saddw2_s16(ctx, acc32[j][3], acc16[j][1]);
      movi_zero(ctx, acc16[j][0]);
      movi_zero(ctx, acc16[j][1]);
    }
    mov_vx(ctx, 4);
    ctx.tally(Op::kLoop);
    k += steps;
  }

  // ST1 of the finished tile (Alg. 1 line 17).
  for (int j = 0; j < kNr; ++j)
    for (int g = 0; g < 4; ++g)
      st1_s32(ctx, acc32[j][g], c + j * kMr + g * 4);
}

}  // namespace lbc::armkern
