// Data padding and packing for the re-designed GEMM (paper Sec. 3.2, Fig. 2).
//
// A (M x K, row-major) is packed into panels of kMr = 16 rows stored
// column-of-the-panel-major: for panel p and depth k, the 16 row values
// A[p*16 .. p*16+15][k] are contiguous — exactly what one LD1 of the micro
// kernel consumes. B (K x N, row-major) is packed into panels of kNr = 4
// columns: for panel q and depth k, B[k][q*4 .. q*4+3] are contiguous — one
// LD4R. Rows beyond M / columns beyond N are zero-padded ("zero padding"
// in the paper), which is value-safe: padded lanes only ever add zero
// products.
//
// Two layers of API:
//  * Owning PackedA/PackedB/PackedSdot* — allocate and pack in one call.
//    Plans prepack weights through these once per layer.
//  * Non-owning APanels/BPanels/Sdot*Panels views + pack_*_into functions
//    that fill caller-provided memory — the per-execute activation packs
//    write into a Workspace arena instead of fresh heap blocks.
#pragma once

#include <vector>

#include "common/align.h"

#include "armsim/counters.h"
#include "armkern/schemes.h"
#include "common/conv_shape.h"
#include "common/tensor.h"
#include "common/types.h"

namespace lbc::armkern {

/// Non-owning view of packed A panels ([panels][K][kMr]).
struct APanels {
  const i8* data = nullptr;
  i64 m = 0, k = 0;
  i64 m_pad = 0;  ///< m rounded up to kMr

  i64 panels() const { return m_pad / kMr; }
  const i8* panel(i64 p) const { return data + p * k * kMr; }
  i64 extra_elems() const { return m_pad * k - m * k; }
};

/// Non-owning view of packed B panels ([panels][K][kNr]).
struct BPanels {
  const i8* data = nullptr;
  i64 k = 0, n = 0;
  i64 n_pad = 0;  ///< n rounded up to kNr

  i64 panels() const { return n_pad / kNr; }
  const i8* panel(i64 q) const { return data + q * k * kNr; }
  i64 extra_elems() const { return n_pad * k - k * n; }
};

struct PackedA {
  AlignedVector<i8> data;  ///< [panels][K][kMr]
  i64 m = 0, k = 0;
  i64 m_pad = 0;  ///< m rounded up to kMr

  i64 panels() const { return m_pad / kMr; }
  const i8* panel(i64 p) const { return data.data() + p * k * kMr; }
  /// Extra elements introduced by padding+packing (Fig. 13 accounting).
  i64 extra_elems() const { return static_cast<i64>(data.size()) - m * k; }
  APanels view() const { return APanels{data.data(), m, k, m_pad}; }
};

struct PackedB {
  AlignedVector<i8> data;  ///< [panels][K][kNr]
  i64 k = 0, n = 0;
  i64 n_pad = 0;  ///< n rounded up to kNr

  i64 panels() const { return n_pad / kNr; }
  const i8* panel(i64 q) const { return data.data() + q * k * kNr; }
  i64 extra_elems() const { return static_cast<i64>(data.size()) - k * n; }
  BPanels view() const { return BPanels{data.data(), k, n, n_pad}; }
};

/// Packed buffer sizes in bytes (i8 elements), for workspace sizing.
i64 packed_a_bytes(i64 m, i64 k);
i64 packed_b_bytes(i64 k, i64 n);

/// Pack A with cost tallying (the packing itself runs per GEMM call for
/// activations; for weights it is done once at plan compile — callers
/// choose whether to pass a tallying ctx).
PackedA pack_a(armsim::Ctx* ctx, const i8* a, i64 m, i64 k);
PackedB pack_b(armsim::Ctx* ctx, const i8* b, i64 k, i64 n);

/// Pack into caller memory (packed_a_bytes/packed_b_bytes big, cache-line
/// aligned). Every destination byte is written, padding included, so stale
/// workspace contents cannot leak into the panels.
APanels pack_a_into(armsim::Ctx* ctx, const i8* a, i64 m, i64 k, i8* dst);
BPanels pack_b_into(armsim::Ctx* ctx, const i8* b, i64 k, i64 n, i8* dst);

/// Column-major copy of B (N x K panels of contiguous columns), used by the
/// traditional-GEMM ablation where each output needs a contiguous B column.
AlignedVector<i8> pack_b_colmajor(armsim::Ctx* ctx, const i8* b, i64 k, i64 n);

// ---- cache-blocked packing (blocking.h) ------------------------------
//
// The blocked GEMM packs ONE (Kc x Nc) block of B at a time into a small
// reusable scratch buffer. Two sources: a row-major K x N matrix (the
// gemm-level API), or — the fused path — the conv input tensor itself,
// gathered through the im2col index mapping so the full K x N im2col
// matrix is never materialized. `dst` must hold kc (rounded to 4 for the
// SDOT layout) x round_up(nc, kNr) bytes; every byte is written.

/// Pack the [k0, k0+kc) x [n0, n0+nc) block of row-major B (K x N) into
/// B-panel layout ([local panel][kc][kNr]) at dst.
BPanels pack_b_block_into(armsim::Ctx* ctx, const i8* b, i64 k, i64 n, i64 k0,
                          i64 kc, i64 n0, i64 nc, i8* dst);

/// Fused im2col packing (paper Sec. 3.2 + cache blocking): gather the
/// im2col rows [k0, k0+kc) for output columns [n0, n0+nc) straight from
/// the input activations (raw NCHW i8 buffer of s.batch * s.in_c * s.in_h
/// * s.in_w elements — a Tensor's data() or a graph arena slot) into
/// packed-B panel layout. Out-of-image taps and columns beyond nc are
/// zero-filled, so the result is byte-identical to pack_b_block_into over
/// a materialized im2col matrix.
BPanels pack_b_panels_from_conv(armsim::Ctx* ctx, const ConvShape& s,
                                const i8* input, i64 k0, i64 kc,
                                i64 n0, i64 nc, i8* dst);

// SDOT-layout blocked variants are declared below SdotBPanels.

/// Issue-cost tallies of the pack loops, exported so the tile search can
/// price a candidate block partition without executing it. `stream` is the
/// contiguous B pack (16-byte moves), `gather` the strided A-style pack
/// (adds transpose/index scalar math), `im2col_gather` the fused conv
/// gather (adds the per-element im2col index math on top of `gather`).
void tally_pack_stream(armsim::Ctx* ctx, i64 elems);
void tally_pack_gather(armsim::Ctx* ctx, i64 elems);
void tally_pack_im2col_gather(armsim::Ctx* ctx, i64 elems);

/// SDOT packing (ARMv8.2 extension kernel): K grouped by 4 so that each
/// 32-bit SDOT lane sees four consecutive depth values.
///   A: [K4/4][kMr rows][4 depths]  (4 x LD1 per 4-depth step)
///   B: [K4/4][kNr cols][4 depths]  (1 x LD1 per 4-depth step)
/// Rows/cols beyond M/N and depths beyond K are zero-padded.
struct SdotAPanels {
  const i8* data = nullptr;
  i64 m = 0, k = 0;
  i64 m_pad = 0, k_pad = 0;

  i64 panels() const { return m_pad / kMr; }
  const i8* panel(i64 p) const { return data + p * k_pad * kMr; }
};

struct SdotBPanels {
  const i8* data = nullptr;
  i64 n = 0, k = 0;
  i64 n_pad = 0, k_pad = 0;

  i64 panels() const { return n_pad / kNr; }
  const i8* panel(i64 q) const { return data + q * k_pad * kNr; }
};

struct PackedSdotA {
  AlignedVector<i8> data;
  i64 m = 0, k = 0;
  i64 m_pad = 0, k_pad = 0;

  i64 panels() const { return m_pad / kMr; }
  const i8* panel(i64 p) const { return data.data() + p * k_pad * kMr; }
  SdotAPanels view() const { return SdotAPanels{data.data(), m, k, m_pad, k_pad}; }
};

i64 packed_sdot_a_bytes(i64 m, i64 k);
i64 packed_sdot_b_bytes(i64 k, i64 n);

/// A-side SDOT pack (weights — runs once at plan compile; execute-time
/// counts never include it). `ctx` is for plan-time cost accounting only:
/// it lets a ConvPlan report what the pack *would* cost per call.
PackedSdotA pack_sdot_a(const i8* a, i64 m, i64 k,
                        armsim::Ctx* ctx = nullptr);
/// B-side SDOT pack into caller memory (activations — per execute; the
/// strided interleave is tallied like an A pack).
SdotBPanels pack_sdot_b_into(armsim::Ctx* ctx, const i8* b, i64 k, i64 n,
                             i8* dst);

/// SDOT-layout blocked packs ([local panel][kc4/4][kNr][4], depth padded
/// to 4) — see the cache-blocked packing section above for semantics.
SdotBPanels pack_sdot_b_block_into(armsim::Ctx* ctx, const i8* b, i64 k,
                                   i64 n, i64 k0, i64 kc, i64 n0, i64 nc,
                                   i8* dst);
SdotBPanels pack_sdot_b_panels_from_conv(armsim::Ctx* ctx, const ConvShape& s,
                                         const i8* input, i64 k0,
                                         i64 kc, i64 n0, i64 nc, i8* dst);

// ---- TBL lookup-table packing (schemes.h TBL section, DESIGN.md Sec. 16) --
//
// The TBL scheme re-encodes one GEMM side as byte indices into 16-entry
// product tables built from the other side. Which side is which is the
// orientation (TblOrientation): kActTables prepacks WEIGHT indices offline
// and builds tables from activations online per B block; kWeightTables
// prebuilds WEIGHT tables offline (8x inflation) and encodes activation
// indices online. Pair mode (group == kTblPairGroup) folds two depth
// positions per index and requires the index side ternary.

/// True when every element of the m x k row-major matrix is in {-1, 0, 1}
/// — the ternary-weight detection that enables pair mode at 3 bit.
bool tbl_values_ternary(const i8* a, i64 m, i64 k);

/// Non-owning view of the offline TBL weight pack.
struct TblAPanels {
  TblOrientation orient = TblOrientation::kActTables;
  int group = 1;   ///< depth positions per index / table (1 or 2)
  int bits = 2;
  bool ternary = false;  ///< weights all in {-1,0,1}
  const u8* idx = nullptr;     ///< kActTables: [m_pad/kMr][groups][kMr]
  const i8* tables = nullptr;  ///< kWeightTables: [m_pad/4][groups][4][16]
  i64 m = 0, k = 0;
  i64 m_pad = 0;  ///< kActTables: round_up(m, kMr); else round_up(m, 4)

  i64 groups() const { return ceil_div(k, static_cast<i64>(group)); }
  const u8* idx_panel(i64 p) const { return idx + p * groups() * kMr; }
  const i8* table_panel(i64 p4) const {
    return tables + p4 * groups() * 4 * 16;
  }
};

/// Owning offline weight pack for the TBL scheme (plan compile).
///  * kActTables: `idx` holds weight-index panels — each byte a ternary
///    pair class (group 2) or a single-value class (group 1); rows beyond
///    m and odd-K tails encode the neutral (zero-contribution) class.
///  * kWeightTables: `tables` holds per-(row, group step) product tables
///    from tbl_build_table; rows beyond m get all-zero tables.
struct PackedTblA {
  TblOrientation orient = TblOrientation::kActTables;
  int group = 1;
  int bits = 2;
  bool ternary = false;
  i64 m = 0, k = 0;
  i64 m_pad = 0;
  AlignedVector<u8> idx;
  AlignedVector<i8> tables;

  i64 groups() const { return ceil_div(k, static_cast<i64>(group)); }
  TblAPanels view() const {
    return TblAPanels{orient, group, bits,   ternary, idx.data(),
                      tables.data(), m, k, m_pad};
  }
};

i64 packed_tbl_idx_a_bytes(i64 m, i64 k, int group);
i64 packed_tbl_tables_a_bytes(i64 m, i64 k, int group);

/// Offline TBL weight pack. Detects ternary weights itself; `ctx` is for
/// plan-time cost accounting only (execute-time counts never include it).
PackedTblA pack_tbl_a(const i8* a, i64 m, i64 k, int bits,
                      TblOrientation orient, armsim::Ctx* ctx = nullptr);

/// kActTables online table build over one (kc x nc) B block:
/// [nc_pad/kNr][groups_c][kNr][16] i8 at dst (groups_c = ceil(kc/group)).
/// One tbl_build_table per (column, group step) from B[k0+gs*group][col]
/// and its pair partner (zero outside k/kc/n; padding columns get all-zero
/// tables). The q-panel stride is groups_c * kNr * 16 = kNr * k_stride of
/// the TBL BlockedLayout, so the blocked driver's panel arithmetic holds
/// unchanged. kc must be a multiple of `group` unless k0 + kc == k.
void pack_tbl_b_tables_block_into(armsim::Ctx* ctx, int bits, int group,
                                  const i8* b, i64 k, i64 n, i64 k0, i64 kc,
                                  i64 n0, i64 nc, i8* dst);
void pack_tbl_b_tables_from_conv(armsim::Ctx* ctx, int bits, int group,
                                 const ConvShape& s, const i8* input, i64 k0,
                                 i64 kc, i64 n0, i64 nc, i8* dst);

/// kWeightTables online index encode over one (kc x nc) B block:
/// [round_up(nc,16)/16][groups_c][16] u8 at dst. Padding columns get the
/// neutral index; odd-kc pair tails encode (v, 0).
void pack_tbl_b_idx_block_into(armsim::Ctx* ctx, int bits, int group,
                               const i8* b, i64 k, i64 n, i64 k0, i64 kc,
                               i64 n0, i64 nc, u8* dst);
void pack_tbl_b_idx_from_conv(armsim::Ctx* ctx, int bits, int group,
                              const ConvShape& s, const i8* input, i64 k0,
                              i64 kc, i64 n0, i64 nc, u8* dst);

/// Issue-cost tally of building `tables` 16-entry product tables (two DUP
/// broadcasts, two vector adds, one ST1 plus operand/address math each) —
/// exported so tile_search can price TBL candidates without executing.
void tally_pack_tbl_tables(armsim::Ctx* ctx, i64 tables);

/// Legacy one-shot packing of both operands (ablation benches and tests).
struct PackedSdot {
  AlignedVector<i8> a, b;
  i64 m = 0, n = 0, k = 0;
  i64 m_pad = 0, n_pad = 0, k_pad = 0;

  i64 a_panels() const { return m_pad / kMr; }
  i64 b_panels() const { return n_pad / kNr; }
  const i8* a_panel(i64 p) const { return a.data() + p * k_pad * kMr; }
  const i8* b_panel(i64 q) const { return b.data() + q * k_pad * kNr; }
};

PackedSdot pack_sdot(armsim::Ctx* ctx, const i8* a, const i8* b, i64 m, i64 n,
                     i64 k);

}  // namespace lbc::armkern
