// Data padding and packing for the re-designed GEMM (paper Sec. 3.2, Fig. 2).
//
// A (M x K, row-major) is packed into panels of kMr = 16 rows stored
// column-of-the-panel-major: for panel p and depth k, the 16 row values
// A[p*16 .. p*16+15][k] are contiguous — exactly what one LD1 of the micro
// kernel consumes. B (K x N, row-major) is packed into panels of kNr = 4
// columns: for panel q and depth k, B[k][q*4 .. q*4+3] are contiguous — one
// LD4R. Rows beyond M / columns beyond N are zero-padded ("zero padding"
// in the paper), which is value-safe: padded lanes only ever add zero
// products.
//
// Two layers of API:
//  * Owning PackedA/PackedB/PackedSdot* — allocate and pack in one call.
//    Plans prepack weights through these once per layer.
//  * Non-owning APanels/BPanels/Sdot*Panels views + pack_*_into functions
//    that fill caller-provided memory — the per-execute activation packs
//    write into a Workspace arena instead of fresh heap blocks.
#pragma once

#include <vector>

#include "common/align.h"

#include "armsim/counters.h"
#include "armkern/schemes.h"
#include "common/conv_shape.h"
#include "common/tensor.h"
#include "common/types.h"

namespace lbc::armkern {

/// Non-owning view of packed A panels ([panels][K][kMr]).
struct APanels {
  const i8* data = nullptr;
  i64 m = 0, k = 0;
  i64 m_pad = 0;  ///< m rounded up to kMr

  i64 panels() const { return m_pad / kMr; }
  const i8* panel(i64 p) const { return data + p * k * kMr; }
  i64 extra_elems() const { return m_pad * k - m * k; }
};

/// Non-owning view of packed B panels ([panels][K][kNr]).
struct BPanels {
  const i8* data = nullptr;
  i64 k = 0, n = 0;
  i64 n_pad = 0;  ///< n rounded up to kNr

  i64 panels() const { return n_pad / kNr; }
  const i8* panel(i64 q) const { return data + q * k * kNr; }
  i64 extra_elems() const { return n_pad * k - k * n; }
};

struct PackedA {
  AlignedVector<i8> data;  ///< [panels][K][kMr]
  i64 m = 0, k = 0;
  i64 m_pad = 0;  ///< m rounded up to kMr

  i64 panels() const { return m_pad / kMr; }
  const i8* panel(i64 p) const { return data.data() + p * k * kMr; }
  /// Extra elements introduced by padding+packing (Fig. 13 accounting).
  i64 extra_elems() const { return static_cast<i64>(data.size()) - m * k; }
  APanels view() const { return APanels{data.data(), m, k, m_pad}; }
};

struct PackedB {
  AlignedVector<i8> data;  ///< [panels][K][kNr]
  i64 k = 0, n = 0;
  i64 n_pad = 0;  ///< n rounded up to kNr

  i64 panels() const { return n_pad / kNr; }
  const i8* panel(i64 q) const { return data.data() + q * k * kNr; }
  i64 extra_elems() const { return static_cast<i64>(data.size()) - k * n; }
  BPanels view() const { return BPanels{data.data(), k, n, n_pad}; }
};

/// Packed buffer sizes in bytes (i8 elements), for workspace sizing.
i64 packed_a_bytes(i64 m, i64 k);
i64 packed_b_bytes(i64 k, i64 n);

/// Pack A with cost tallying (the packing itself runs per GEMM call for
/// activations; for weights it is done once at plan compile — callers
/// choose whether to pass a tallying ctx).
PackedA pack_a(armsim::Ctx* ctx, const i8* a, i64 m, i64 k);
PackedB pack_b(armsim::Ctx* ctx, const i8* b, i64 k, i64 n);

/// Pack into caller memory (packed_a_bytes/packed_b_bytes big, cache-line
/// aligned). Every destination byte is written, padding included, so stale
/// workspace contents cannot leak into the panels.
APanels pack_a_into(armsim::Ctx* ctx, const i8* a, i64 m, i64 k, i8* dst);
BPanels pack_b_into(armsim::Ctx* ctx, const i8* b, i64 k, i64 n, i8* dst);

/// Column-major copy of B (N x K panels of contiguous columns), used by the
/// traditional-GEMM ablation where each output needs a contiguous B column.
AlignedVector<i8> pack_b_colmajor(armsim::Ctx* ctx, const i8* b, i64 k, i64 n);

// ---- cache-blocked packing (blocking.h) ------------------------------
//
// The blocked GEMM packs ONE (Kc x Nc) block of B at a time into a small
// reusable scratch buffer. Two sources: a row-major K x N matrix (the
// gemm-level API), or — the fused path — the conv input tensor itself,
// gathered through the im2col index mapping so the full K x N im2col
// matrix is never materialized. `dst` must hold kc (rounded to 4 for the
// SDOT layout) x round_up(nc, kNr) bytes; every byte is written.

/// Pack the [k0, k0+kc) x [n0, n0+nc) block of row-major B (K x N) into
/// B-panel layout ([local panel][kc][kNr]) at dst.
BPanels pack_b_block_into(armsim::Ctx* ctx, const i8* b, i64 k, i64 n, i64 k0,
                          i64 kc, i64 n0, i64 nc, i8* dst);

/// Fused im2col packing (paper Sec. 3.2 + cache blocking): gather the
/// im2col rows [k0, k0+kc) for output columns [n0, n0+nc) straight from
/// the input activations (raw NCHW i8 buffer of s.batch * s.in_c * s.in_h
/// * s.in_w elements — a Tensor's data() or a graph arena slot) into
/// packed-B panel layout. Out-of-image taps and columns beyond nc are
/// zero-filled, so the result is byte-identical to pack_b_block_into over
/// a materialized im2col matrix.
BPanels pack_b_panels_from_conv(armsim::Ctx* ctx, const ConvShape& s,
                                const i8* input, i64 k0, i64 kc,
                                i64 n0, i64 nc, i8* dst);

// SDOT-layout blocked variants are declared below SdotBPanels.

/// Issue-cost tallies of the pack loops, exported so the tile search can
/// price a candidate block partition without executing it. `stream` is the
/// contiguous B pack (16-byte moves), `gather` the strided A-style pack
/// (adds transpose/index scalar math), `im2col_gather` the fused conv
/// gather (adds the per-element im2col index math on top of `gather`).
void tally_pack_stream(armsim::Ctx* ctx, i64 elems);
void tally_pack_gather(armsim::Ctx* ctx, i64 elems);
void tally_pack_im2col_gather(armsim::Ctx* ctx, i64 elems);

/// SDOT packing (ARMv8.2 extension kernel): K grouped by 4 so that each
/// 32-bit SDOT lane sees four consecutive depth values.
///   A: [K4/4][kMr rows][4 depths]  (4 x LD1 per 4-depth step)
///   B: [K4/4][kNr cols][4 depths]  (1 x LD1 per 4-depth step)
/// Rows/cols beyond M/N and depths beyond K are zero-padded.
struct SdotAPanels {
  const i8* data = nullptr;
  i64 m = 0, k = 0;
  i64 m_pad = 0, k_pad = 0;

  i64 panels() const { return m_pad / kMr; }
  const i8* panel(i64 p) const { return data + p * k_pad * kMr; }
};

struct SdotBPanels {
  const i8* data = nullptr;
  i64 n = 0, k = 0;
  i64 n_pad = 0, k_pad = 0;

  i64 panels() const { return n_pad / kNr; }
  const i8* panel(i64 q) const { return data + q * k_pad * kNr; }
};

struct PackedSdotA {
  AlignedVector<i8> data;
  i64 m = 0, k = 0;
  i64 m_pad = 0, k_pad = 0;

  i64 panels() const { return m_pad / kMr; }
  const i8* panel(i64 p) const { return data.data() + p * k_pad * kMr; }
  SdotAPanels view() const { return SdotAPanels{data.data(), m, k, m_pad, k_pad}; }
};

i64 packed_sdot_a_bytes(i64 m, i64 k);
i64 packed_sdot_b_bytes(i64 k, i64 n);

/// A-side SDOT pack (weights — runs once at plan compile; execute-time
/// counts never include it). `ctx` is for plan-time cost accounting only:
/// it lets a ConvPlan report what the pack *would* cost per call.
PackedSdotA pack_sdot_a(const i8* a, i64 m, i64 k,
                        armsim::Ctx* ctx = nullptr);
/// B-side SDOT pack into caller memory (activations — per execute; the
/// strided interleave is tallied like an A pack).
SdotBPanels pack_sdot_b_into(armsim::Ctx* ctx, const i8* b, i64 k, i64 n,
                             i8* dst);

/// SDOT-layout blocked packs ([local panel][kc4/4][kNr][4], depth padded
/// to 4) — see the cache-blocked packing section above for semantics.
SdotBPanels pack_sdot_b_block_into(armsim::Ctx* ctx, const i8* b, i64 k,
                                   i64 n, i64 k0, i64 kc, i64 n0, i64 nc,
                                   i8* dst);
SdotBPanels pack_sdot_b_panels_from_conv(armsim::Ctx* ctx, const ConvShape& s,
                                         const i8* input, i64 k0,
                                         i64 kc, i64 n0, i64 nc, i8* dst);

/// Legacy one-shot packing of both operands (ablation benches and tests).
struct PackedSdot {
  AlignedVector<i8> a, b;
  i64 m = 0, n = 0, k = 0;
  i64 m_pad = 0, n_pad = 0, k_pad = 0;

  i64 a_panels() const { return m_pad / kMr; }
  i64 b_panels() const { return n_pad / kNr; }
  const i8* a_panel(i64 p) const { return a.data() + p * k_pad * kMr; }
  const i8* b_panel(i64 q) const { return b.data() + q * k_pad * kNr; }
};

PackedSdot pack_sdot(armsim::Ctx* ctx, const i8* a, const i8* b, i64 m, i64 n,
                     i64 k);

}  // namespace lbc::armkern
