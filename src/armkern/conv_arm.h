// ARM-backend convolution driver: explicit im2col + re-designed low-bit
// GEMM (paper Sec. 3), with winograd and bit-serial alternatives, plus the
// cost-model evaluation and the Fig. 13 space accounting.
//
// The driver validates its inputs (shape, bit width, tensor dims) and
// returns a Status error instead of asserting; an ineligible algo request
// degrades along the ladder specialized -> GEMM -> reference conv, with
// the degradation recorded in ArmConvResult::fallback.
#pragma once

#include "armkern/gemm_lowbit.h"
#include "armsim/cost_model.h"
#include "common/conv_shape.h"
#include "common/fallback.h"
#include "common/status.h"
#include "common/tensor.h"

namespace lbc::armkern {

enum class ConvAlgo {
  kAuto,       ///< winograd when eligible and 4-6 bit, else GEMM
  kGemm,       ///< explicit im2col + re-designed GEMM
  kWinograd,   ///< F(2x2,3x3), requires 3x3/stride-1 and 4-6 bit
  kBitserial,  ///< popcount baseline, requires <= 2 bit
  kDirect,     ///< im2col-free direct convolution (Sec. 2.2 baseline)
  kReference,  ///< scalar reference conv — the fallback ladder's last rung
};

/// Stable lowercase name ("gemm", "winograd", ...) for reports.
const char* algo_name(ConvAlgo a);

/// Eligibility predicates for the specialized algos/kernels. The dispatch
/// fallback chain consults these; they are public so callers can predict
/// which rung will execute.
bool winograd_eligible_for(const ConvShape& s, int bits);
bool bitserial_eligible_for(int bits);
bool sdot_eligible_for(int bits);

struct ArmConvOptions {
  int bits = 8;
  ConvAlgo algo = ConvAlgo::kGemm;
  ArmKernel kernel = ArmKernel::kOursGemm;
  int threads = 1;
};

/// Fig. 13 space accounting. The paper's ratios are
///   im2col overhead  = (act + weight + im2col) / (act + weight)
///   packing overhead = extra padded elements on top of that.
struct SpaceReport {
  i64 baseline_elems = 0;     ///< activation + weight
  i64 im2col_elems = 0;       ///< materialized im2col matrix
  i64 pack_extra_elems = 0;   ///< zero-padding added by pack
  double im2col_overhead() const {
    return static_cast<double>(baseline_elems + im2col_elems) /
           static_cast<double>(baseline_elems);
  }
  double pack_overhead() const {
    const double base = static_cast<double>(baseline_elems + im2col_elems);
    return (base + static_cast<double>(pack_extra_elems)) / base;
  }
  double total_overhead() const { return im2col_overhead() * pack_overhead(); }
};

struct ArmConvResult {
  Tensor<i32> out;
  armsim::Counters counts;
  double cycles = 0;
  double seconds = 0;
  SpaceReport space;
  std::string executed_algo;  ///< rung that produced `out` ("gemm", ...)
  FallbackRecord fallback;    ///< set when the request was degraded
};

/// Quantized convolution to 32-bit accumulators. Bit-exact with
/// ref::conv2d_s32 for GEMM/bitserial algos and with
/// ref::winograd_conv_s32(kRoundedInt8) for the winograd algo.
///
/// Errors (never asserts, also in release builds):
///  * kInvalidArgument — invalid shape, bits outside [2, 8], tensor dims
///    that do not match the shape, or threads < 1.
/// Ineligible algo/kernel requests do NOT error; they degrade and record.
StatusOr<ArmConvResult> conv2d_s32(const ConvShape& s, const Tensor<i8>& input,
                                   const Tensor<i8>& weight,
                                   const ArmConvOptions& opt);

}  // namespace lbc::armkern
