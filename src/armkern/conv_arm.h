// ARM-backend convolution driver: explicit im2col + re-designed low-bit
// GEMM (paper Sec. 3), with winograd and bit-serial alternatives, plus the
// cost-model evaluation and the Fig. 13 space accounting.
#pragma once

#include "armkern/gemm_lowbit.h"
#include "armsim/cost_model.h"
#include "common/conv_shape.h"
#include "common/tensor.h"

namespace lbc::armkern {

enum class ConvAlgo {
  kAuto,       ///< winograd when eligible and 4-6 bit, else GEMM
  kGemm,       ///< explicit im2col + re-designed GEMM
  kWinograd,   ///< F(2x2,3x3), requires 3x3/stride-1 and 4-6 bit
  kBitserial,  ///< popcount baseline, requires <= 2 bit
  kDirect,     ///< im2col-free direct convolution (Sec. 2.2 baseline)
};

struct ArmConvOptions {
  int bits = 8;
  ConvAlgo algo = ConvAlgo::kGemm;
  ArmKernel kernel = ArmKernel::kOursGemm;
  int threads = 1;
};

/// Fig. 13 space accounting. The paper's ratios are
///   im2col overhead  = (act + weight + im2col) / (act + weight)
///   packing overhead = extra padded elements on top of that.
struct SpaceReport {
  i64 baseline_elems = 0;     ///< activation + weight
  i64 im2col_elems = 0;       ///< materialized im2col matrix
  i64 pack_extra_elems = 0;   ///< zero-padding added by pack
  double im2col_overhead() const {
    return static_cast<double>(baseline_elems + im2col_elems) /
           static_cast<double>(baseline_elems);
  }
  double pack_overhead() const {
    const double base = static_cast<double>(baseline_elems + im2col_elems);
    return (base + static_cast<double>(pack_extra_elems)) / base;
  }
  double total_overhead() const { return im2col_overhead() * pack_overhead(); }
};

struct ArmConvResult {
  Tensor<i32> out;
  armsim::Counters counts;
  double cycles = 0;
  double seconds = 0;
  SpaceReport space;
};

/// Quantized convolution to 32-bit accumulators. Bit-exact with
/// ref::conv2d_s32 for GEMM/bitserial algos and with
/// ref::winograd_conv_s32(kRoundedInt8) for the winograd algo.
ArmConvResult conv2d_s32(const ConvShape& s, const Tensor<i8>& input,
                         const Tensor<i8>& weight, const ArmConvOptions& opt);

}  // namespace lbc::armkern
