// ARM-backend convolution driver: explicit im2col + re-designed low-bit
// GEMM (paper Sec. 3), with winograd and bit-serial alternatives, plus the
// cost-model evaluation and the Fig. 13 space accounting.
//
// The driver validates its inputs (shape, bit width, tensor dims) and
// returns a Status error instead of asserting; an ineligible algo request
// degrades along the ladder specialized -> GEMM -> reference conv, with
// the degradation recorded in ArmConvResult::fallback.
//
// Execution is split into plan and execute (the cuDNN descriptor /
// TVM build-then-run shape): plan_conv resolves the algo/kernel fallback
// ladder once and prepacks the weights in the chosen micro-kernel's
// layout; execute_conv runs any number of inputs against the immutable
// plan, drawing all activation scratch from a caller-owned Workspace.
// conv2d_s32 remains as the one-shot wrapper (plan + execute) and is
// bit-exact with the split API — including modeled cycle counts, because
// weight packing was already excluded from execute-time cost accounting
// (weights are packed offline in deployment).
#pragma once

#include "armkern/bitserial.h"
#include "armkern/gemm_lowbit.h"
#include "armkern/winograd23.h"
#include "armsim/cost_model.h"
#include "common/conv_shape.h"
#include "common/fallback.h"
#include "common/status.h"
#include "common/tensor.h"

namespace lbc {
class Workspace;
}  // namespace lbc

namespace lbc::armkern {

enum class ConvAlgo {
  kAuto,       ///< winograd when eligible and 4-6 bit, else GEMM
  kGemm,       ///< explicit im2col + re-designed GEMM
  kWinograd,   ///< F(2x2,3x3), requires 3x3/stride-1 and 4-6 bit
  kBitserial,  ///< popcount baseline, requires <= 2 bit
  kDirect,     ///< im2col-free direct convolution (Sec. 2.2 baseline)
  kReference,  ///< scalar reference conv — the fallback ladder's last rung
};

/// Stable lowercase name ("gemm", "winograd", ...) for reports.
const char* algo_name(ConvAlgo a);

/// Eligibility predicates for the specialized algos/kernels. The dispatch
/// fallback chain consults these; they are public so callers can predict
/// which rung will execute.
bool winograd_eligible_for(const ConvShape& s, int bits);
bool bitserial_eligible_for(int bits);
bool sdot_eligible_for(int bits);
bool tbl_eligible_for(int bits);

/// How plan_conv picks the blocked-GEMM {Mc, Kc, Nc} (GEMM-family algos
/// only; other rungs ignore it).
enum class BlockingPolicy {
  kAuto,      ///< tile auto-search per (shape, bits, scheme) — the default
  kExplicit,  ///< use ArmConvOptions::explicit_blocking (clamped to shape)
  kOff,       ///< legacy unblocked sweep with materialized im2col
};

struct ArmConvOptions {
  int bits = 8;
  ConvAlgo algo = ConvAlgo::kGemm;
  ArmKernel kernel = ArmKernel::kOursGemm;
  int threads = 1;
  /// Cache blocking of the low-bit GEMM (paper Sec. 3.2 discipline applied
  /// to the ARM path): Mc/Kc/Nc loop nest with the im2col rows gathered
  /// on the fly per (Kc x Nc) block instead of materialized up front.
  BlockingPolicy blocking = BlockingPolicy::kAuto;
  /// Consulted only under BlockingPolicy::kExplicit; clamped to the
  /// shape's GEMM view by plan_conv.
  GemmBlocking explicit_blocking{128, 64, 256};
  /// Checked execution (armsim/verifier.h): run every emulated kernel under
  /// the invariant verifier — overflow intervals, register budget, memory
  /// bounds, scheme conformance. A caught violation turns the execute into
  /// a kInvariantViolation Status. Debug option: forces single-threaded
  /// kernels and is off by default (off-mode cycles are bit-identical).
  bool verify = false;
};

/// Fig. 13 space accounting. The paper's ratios are
///   im2col overhead  = (act + weight + im2col) / (act + weight)
///   packing overhead = extra padded elements on top of that.
struct SpaceReport {
  i64 baseline_elems = 0;     ///< activation + weight
  i64 im2col_elems = 0;       ///< materialized im2col matrix
  i64 pack_extra_elems = 0;   ///< zero-padding added by pack
  double im2col_overhead() const {
    return static_cast<double>(baseline_elems + im2col_elems) /
           static_cast<double>(baseline_elems);
  }
  double pack_overhead() const {
    const double base = static_cast<double>(baseline_elems + im2col_elems);
    return (base + static_cast<double>(pack_extra_elems)) / base;
  }
  double total_overhead() const { return im2col_overhead() * pack_overhead(); }
};

struct ArmConvResult {
  Tensor<i32> out;
  armsim::Counters counts;
  double cycles = 0;
  double seconds = 0;
  SpaceReport space;
  std::string executed_algo;  ///< rung that produced `out` ("gemm", ...)
  FallbackRecord fallback;    ///< set when the request was degraded
};

/// Compiled convolution plan: the algo/kernel ladder resolved once, the
/// weights prepacked in the executing kernel's layout, and the exact
/// per-execute workspace requirement recorded.
///
/// Immutable after plan_conv returns — safe to share across threads; each
/// executing thread brings its own Workspace.
struct ArmConvPlan {
  ConvShape shape;           ///< geometry as planned (batch may differ at execute)
  ArmConvOptions requested;  ///< the original request
  ConvAlgo algo = ConvAlgo::kGemm;     ///< resolved rung
  ArmKernel kernel = ArmKernel::kOursGemm;  ///< resolved kernel
  /// Resolved {Mc, Kc, Nc} for the GEMM-family rungs (disabled under
  /// BlockingPolicy::kOff, for non-GEMM rungs, and for kTraditional).
  GemmBlocking blocking;
  FallbackRecord planned_fallback;     ///< eligibility degradations

  /// Original weights — kept for the rungs that consume them unpacked
  /// (reference recovery, direct, traditional GEMM).
  Tensor<i8> weight;

  /// Prepacked weights; exactly one is populated, per (algo, kernel).
  PackedA gemm_a;             ///< kGemm with kOursGemm / kNcnn
  PackedSdotA sdot_a;         ///< kGemm with kSdotExt
  PackedTblA tbl_a;           ///< kGemm with kTblGemm
  BitserialWeights bitplanes; ///< kBitserial
  WinogradWeights winograd;   ///< kWinograd

  i64 packed_weight_bytes = 0;
  /// Modeled cycles the weight pack would cost if run per call — what the
  /// plan amortizes away (reported by the serving bench; never merged into
  /// execute-time counts, which exclude weight packing in both APIs).
  double pack_cycles = 0;

  /// Exact Workspace bytes one execute_conv at batch `batch` consumes
  /// (cache-line-rounded, matching Workspace accounting).
  i64 workspace_bytes(i64 batch) const;
};

/// Resolve the ladder and prepack the weights. Errors:
///  * kInvalidArgument — invalid shape, bits outside [2, 8], weight dims
///    that do not match the shape, or threads outside [1, 64];
///  * kResourceExhausted — plan compilation failed (injected via the
///    plan.compile_fail fault site). Callers degrade to the unplanned
///    path or surface the error.
StatusOr<ArmConvPlan> plan_conv(const ConvShape& s, const Tensor<i8>& weight,
                                const ArmConvOptions& opt);

/// Execute the plan against `input`, whose batch may differ from the
/// planned batch (weights pack identically for any batch; only the GEMM N
/// dimension changes). All scratch comes from `ws`, which is reset on
/// entry; pointers previously handed out by `ws` are invalidated.
/// Runtime faults degrade along the same ladder as conv2d_s32, appending
/// to the plan's fallback record.
StatusOr<ArmConvResult> execute_conv(const ArmConvPlan& plan,
                                     const Tensor<i8>& input, Workspace& ws);

/// Result of a graph-fused execute: no i32 output tensor — the epilogue
/// consumed the accumulators in-cache and wrote the requantized i8
/// activations itself.
struct FusedConvResult {
  armsim::Counters counts;
  double cycles = 0;
  double seconds = 0;
  SpaceReport space;
};

/// Graph-fusion execute: run a blocked-GEMM plan against a raw NCHW i8
/// activation buffer with `epi` applied to every C row segment right after
/// its final Kc accumulation (requantize/ReLU/residual-add while the rows
/// are cache-resident). `c` is caller-provided i32 scratch of gemm_m *
/// gemm_n elements — after the call it holds the raw accumulators but is
/// free to recycle. Unlike execute_conv, the Workspace is NOT reset: the
/// graph runner owns the arena layout (liveness-planned activation slots
/// below, per-node scratch above — released by Workspace::rewind).
/// Errors: kFailedPrecondition when the plan's resolved rung is not the
/// blocked fused-pack GEMM (winograd/bitserial/direct/reference/unblocked
/// plans execute unfused via execute_conv), or when the planned batch != 1
/// (graph forward is batch-1).
StatusOr<FusedConvResult> execute_conv_fused(const ArmConvPlan& plan,
                                             const i8* input, i32* c,
                                             const TileEpilogue& epi,
                                             Workspace& ws);

/// Quantized convolution to 32-bit accumulators. Bit-exact with
/// ref::conv2d_s32 for GEMM/bitserial algos and with
/// ref::winograd_conv_s32(kRoundedInt8) for the winograd algo.
/// One-shot wrapper over plan_conv + execute_conv; a plan-compile fault
/// degrades to the reference rung (the ladder's floor) and records it.
///
/// Errors (never asserts, also in release builds):
///  * kInvalidArgument — invalid shape, bits outside [2, 8], tensor dims
///    that do not match the shape, or threads < 1.
/// Ineligible algo/kernel requests do NOT error; they degrade and record.
StatusOr<ArmConvResult> conv2d_s32(const ConvShape& s, const Tensor<i8>& input,
                                   const Tensor<i8>& weight,
                                   const ArmConvOptions& opt);

}  // namespace lbc::armkern
