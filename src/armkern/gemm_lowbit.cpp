#include "armkern/gemm_lowbit.h"

#include "common/status.h"
#include <cstring>
#include <vector>

#include "armkern/gemm_blocked.h"
#include "armkern/micro.h"
#include "armkern/pack.h"
#include "armkern/tile_search.h"
#include "common/workspace.h"
#include "serve/thread_pool.h"

namespace lbc::armkern {

using namespace armsim;

namespace {

// Per-call scratch: from the caller's arena when one is plumbed through,
// otherwise a fresh aligned heap block (the one-shot path).
i8* scratch_i8(const GemmOptions& opt, AlignedVector<i8>& own, i64 bytes) {
  if (opt.workspace != nullptr) return opt.workspace->alloc_n<i8>(bytes);
  own.resize(static_cast<size_t>(bytes));
  return own.data();
}

// Process the m-panel range [p0, p1) against every n-panel, tallying into
// `ctx`. Each 16x4 micro tile lands in a column-major scratch tile and is
// then scattered into row-major C with edge clipping (the micro kernel's
// ST1s already account for the store cost; the scatter is an emulation
// artifact of keeping C row-major for the tests).
void run_panels(Ctx& ctx, const APanels& pa, const BPanels& pb, i32* c, i64 m,
                i64 n, i64 k, const GemmOptions& opt, i64 p0, i64 p1) {
  const int bits = opt.bits;
  const ArmKernel kernel = opt.kernel;
  alignas(64) i32 tile[kMr * kNr] = {};
  if (ctx.verifier != nullptr)
    ctx.verifier->add_region(tile, sizeof(tile), "gemm C tile");
  for (i64 p = p0; p < p1; ++p) {
    for (i64 q = 0; q < pb.panels(); ++q) {
      switch (kernel) {
        case ArmKernel::kOursGemm:
          if (opt.flush_override > 0)
            micro_smlal_16x4(ctx, pa.panel(p), pb.panel(q), k,
                             opt.flush_override, tile);
          else if (bits <= 3)
            micro_mla_16x4(ctx, pa.panel(p), pb.panel(q), k,
                           mla_flush_interval(bits), tile);
          else
            micro_smlal_16x4(ctx, pa.panel(p), pb.panel(q), k,
                             smlal_flush_interval(bits), tile);
          break;
        case ArmKernel::kNcnn:
          micro_ncnn_16x4(ctx, pa.panel(p), pb.panel(q), k, tile);
          break;
        case ArmKernel::kTraditional:
        case ArmKernel::kSdotExt:
        case ArmKernel::kTblGemm:
          LBC_CHECK_MSG(false, "kernel has its own entry point");
          break;
      }
      const i64 rows = std::min<i64>(kMr, m - p * kMr);
      const i64 cols = std::min<i64>(kNr, n - q * kNr);
      for (i64 ii = 0; ii < rows; ++ii) {
        // Cache traffic of the real kernel's C store (the scratch tile is
        // an emulation artifact; its issue cost is the micro kernel's ST1).
        ctx.mem(&c[(p * kMr + ii) * n + q * kNr], static_cast<u64>(cols) * 4);
        for (i64 jj = 0; jj < cols; ++jj)
          c[(p * kMr + ii) * n + q * kNr + jj] = tile[jj * kMr + ii];
      }
    }
  }
}

// Shared tail of the packed-panel path: pack B (into the arena when one is
// provided), run the panel loop serially or across the pool, assemble stats.
// `pack_ctx` may already hold A-pack tallies (count_a_pack one-shot runs).
GemmStats run_gemm_packed(Ctx& pack_ctx, const APanels& pa, const i8* b,
                          i32* c, i64 m, i64 n, i64 k,
                          const GemmOptions& opt) {
  GemmStats stats;
  AlignedVector<i8> own_b;
  i8* bbuf = scratch_i8(opt, own_b, packed_b_bytes(k, n));
  if (opt.verifier != nullptr) {
    // Ranged registrations go in BEFORE the pack touches the buffers so the
    // pack's rangeless ensure_region calls are no-ops and the interval
    // analysis sees real operand bounds.
    pack_ctx.verifier = opt.verifier;
    const i32 qa = opt.a_max_abs > 0 ? opt.a_max_abs : qmax_for_bits(opt.bits);
    const i32 qb = opt.b_max_abs > 0 ? opt.b_max_abs : qmax_for_bits(opt.bits);
    opt.verifier->add_region(pa.data, pa.m_pad * pa.k, "packed A panels", -qa,
                             qa);
    opt.verifier->add_region(b, k * n, "gemm B", -qb, qb);
    opt.verifier->add_region(bbuf, packed_b_bytes(k, n), "packed B panels",
                             -qb, qb);
    opt.verifier->add_region(c, m * n * static_cast<i64>(sizeof(i32)),
                             "gemm C");
  }
  const BPanels pb = pack_b_into(&pack_ctx, b, k, n, bbuf);
  stats.pack_extra_elems = pa.extra_elems() + pb.extra_elems();

  const int threads =
      opt.verifier != nullptr
          ? 1
          : std::max(1,
                     std::min<int>(opt.threads, static_cast<int>(pa.panels())));
  if (threads == 1) {
    Ctx ctx;
    ctx.verifier = opt.verifier;
    run_panels(ctx, pa, pb, c, m, n, k, opt, 0, pa.panels());
    stats.counts = ctx.counts;
    stats.thread_counts = {ctx.counts};
  } else {
    // Row-panel parallelism: each modeled worker owns a disjoint band of C
    // and its own Ctx (the per-band counts feed the multicore Amdahl timing
    // model unchanged). Bands execute on the shared persistent pool — no
    // per-call thread spawn; grain 1 = one band per pool chunk.
    std::vector<Ctx> ctxs(static_cast<size_t>(threads));
    const i64 per = ceil_div(pa.panels(), threads);
    serve::ThreadPool::global().parallel_for(
        0, threads, 1, [&](i64 t0, i64 t1) {
          for (i64 t = t0; t < t1; ++t) {
            const i64 p0 = t * per;
            const i64 p1 = std::min<i64>(pa.panels(), p0 + per);
            if (p0 < p1)
              run_panels(ctxs[static_cast<size_t>(t)], pa, pb, c, m, n, k,
                         opt, p0, p1);
          }
        });
    for (const auto& cx : ctxs) {
      stats.counts.merge(cx.counts);
      stats.thread_counts.push_back(cx.counts);
    }
  }
  stats.serial_counts = pack_ctx.counts;
  stats.counts.merge(pack_ctx.counts);
  return stats;
}

// Shared tail of the SDOT path with A already in SDOT layout.
GemmStats run_sdot_panels(const SdotAPanels& pa, const i8* b, i32* c, i64 m,
                          i64 n, i64 k, const GemmOptions& opt) {
  GemmStats stats;
  Ctx pack_ctx;
  Ctx ctx;
  AlignedVector<i8> own_b;
  i8* bbuf = scratch_i8(opt, own_b, packed_sdot_b_bytes(k, n));
  alignas(64) i32 tile[kMr * kNr] = {};
  if (opt.verifier != nullptr) {
    pack_ctx.verifier = opt.verifier;
    ctx.verifier = opt.verifier;
    const i32 qa = opt.a_max_abs > 0 ? opt.a_max_abs : qmax_for_bits(opt.bits);
    const i32 qb = opt.b_max_abs > 0 ? opt.b_max_abs : qmax_for_bits(opt.bits);
    opt.verifier->add_region(pa.data, pa.m_pad * pa.k_pad, "packed SDOT A",
                             -qa, qa);
    opt.verifier->add_region(b, k * n, "gemm B", -qb, qb);
    opt.verifier->add_region(bbuf, packed_sdot_b_bytes(k, n), "packed SDOT B",
                             -qb, qb);
    opt.verifier->add_region(c, m * n * static_cast<i64>(sizeof(i32)),
                             "gemm C");
    opt.verifier->add_region(tile, sizeof(tile), "gemm C tile");
  }
  const SdotBPanels pb = pack_sdot_b_into(&pack_ctx, b, k, n, bbuf);
  stats.pack_extra_elems =
      (pa.m_pad * pa.k_pad + pb.n_pad * pb.k_pad) - m * k - k * n;
  for (i64 p = 0; p < pa.panels(); ++p)
    for (i64 q = 0; q < pb.panels(); ++q) {
      micro_sdot_16x4(ctx, pa.panel(p), pb.panel(q), pa.k_pad, tile);
      const i64 rows = std::min<i64>(kMr, m - p * kMr);
      const i64 cols = std::min<i64>(kNr, n - q * kNr);
      for (i64 ii = 0; ii < rows; ++ii) {
        ctx.mem(&c[(p * kMr + ii) * n + q * kNr], static_cast<u64>(cols) * 4);
        for (i64 jj = 0; jj < cols; ++jj)
          c[(p * kMr + ii) * n + q * kNr + jj] = tile[jj * kMr + ii];
      }
    }
  stats.thread_counts = {ctx.counts};
  stats.serial_counts = pack_ctx.counts;
  stats.counts = ctx.counts;
  stats.counts.merge(pack_ctx.counts);
  return stats;
}

}  // namespace

GemmStats gemm_s8s32(const i8* a, const i8* b, i32* c, i64 m, i64 n, i64 k,
                     const GemmOptions& opt) {
  LBC_CHECK_MSG(opt.bits >= 2 && opt.bits <= 8, "gemm_lowbit: bits outside [2, 8]");

  if (opt.kernel == ArmKernel::kTraditional) {
    GemmStats stats;
    Ctx ctx;
    ctx.verifier = opt.verifier;
    gemm_traditional(ctx, opt.bits, a, b, c, m, n, k);
    stats.counts = ctx.counts;
    stats.thread_counts = {ctx.counts};
    stats.interleaved = false;  // the naive loop does not software-pipeline
    return stats;
  }

  if (opt.kernel == ArmKernel::kSdotExt) {
    // A pack is offline (weights) — untallied here exactly as at plan time.
    const PackedSdotA pa = pack_sdot_a(a, m, k);
    if (opt.blocking.enabled())
      return gemm_blocked_sdot_prepacked(pa.view(), b, c, m, n, k, opt);
    return run_sdot_panels(pa.view(), b, c, m, n, k, opt);
  }

  if (opt.kernel == ArmKernel::kTblGemm) {
    LBC_CHECK_MSG(opt.bits <= 3, "TBL scheme ships for 2-3 bit only");
    // Orientation is priced from geometry + detected weight values; the
    // offline weight pack is untallied exactly as at plan time. The scheme
    // only exists blocked — force the default blocking when disabled.
    const TblOrientation orient = choose_tbl_orientation(
        m, n, k, opt.bits, tbl_values_ternary(a, m, k));
    const PackedTblA ta = pack_tbl_a(a, m, k, opt.bits, orient);
    GemmOptions o = opt;
    if (!o.blocking.enabled()) o.blocking = default_blocking(m, n, k, false);
    return gemm_blocked_tbl_prepacked(ta.view(), b, c, m, n, k, o);
  }

  Ctx pack_ctx;
  if (opt.verifier != nullptr && opt.count_a_pack) {
    // The tallied A pack reads `a` through ctx.mem before run_gemm_packed
    // registers anything; its own pa.data ensure_region is rangeless and is
    // replaced by the ranged registration downstream.
    pack_ctx.verifier = opt.verifier;
    const i32 qa = opt.a_max_abs > 0 ? opt.a_max_abs : qmax_for_bits(opt.bits);
    opt.verifier->add_region(a, m * k, "gemm A", -qa, qa);
  }
  const PackedA pa = pack_a(opt.count_a_pack ? &pack_ctx : nullptr, a, m, k);
  if (opt.blocking.enabled()) {
    GemmStats stats = gemm_blocked_prepacked(pa.view(), b, c, m, n, k, opt);
    // A-pack tallies (count_a_pack one-shot runs) stay a serial pre-pass.
    stats.serial_counts.merge(pack_ctx.counts);
    stats.counts.merge(pack_ctx.counts);
    return stats;
  }
  return run_gemm_packed(pack_ctx, pa.view(), b, c, m, n, k, opt);
}

GemmStats gemm_s8s32_prepacked(const APanels& pa, const i8* b, i32* c, i64 m,
                               i64 n, i64 k, const GemmOptions& opt) {
  LBC_CHECK_MSG(opt.bits >= 2 && opt.bits <= 8, "gemm_lowbit: bits outside [2, 8]");
  LBC_CHECK_MSG(opt.kernel == ArmKernel::kOursGemm ||
                    opt.kernel == ArmKernel::kNcnn,
                "gemm_s8s32_prepacked: kernel does not use packed A panels");
  LBC_CHECK_MSG(pa.m == m && pa.k == k,
                "gemm_s8s32_prepacked: packed A geometry mismatch");
  if (opt.blocking.enabled())
    return gemm_blocked_prepacked(pa, b, c, m, n, k, opt);
  Ctx pack_ctx;
  return run_gemm_packed(pack_ctx, pa, b, c, m, n, k, opt);
}

GemmStats gemm_s8s32_sdot_prepacked(const SdotAPanels& pa, const i8* b,
                                    i32* c, i64 m, i64 n, i64 k,
                                    const GemmOptions& opt) {
  LBC_CHECK_MSG(opt.bits >= 2 && opt.bits <= 8, "gemm_lowbit: bits outside [2, 8]");
  LBC_CHECK_MSG(pa.m == m && pa.k == k,
                "gemm_s8s32_sdot_prepacked: packed A geometry mismatch");
  if (opt.blocking.enabled())
    return gemm_blocked_sdot_prepacked(pa, b, c, m, n, k, opt);
  return run_sdot_panels(pa, b, c, m, n, k, opt);
}

}  // namespace lbc::armkern
