#include "armkern/gemm_lowbit.h"

#include "common/status.h"
#include <cstring>
#include <vector>

#include "armkern/micro.h"
#include "armkern/pack.h"
#include "serve/thread_pool.h"

namespace lbc::armkern {

using namespace armsim;

namespace {

// Process the m-panel range [p0, p1) against every n-panel, tallying into
// `ctx`. Each 16x4 micro tile lands in a column-major scratch tile and is
// then scattered into row-major C with edge clipping (the micro kernel's
// ST1s already account for the store cost; the scatter is an emulation
// artifact of keeping C row-major for the tests).
void run_panels(Ctx& ctx, const PackedA& pa, const PackedB& pb, i32* c, i64 m,
                i64 n, i64 k, const GemmOptions& opt, i64 p0, i64 p1) {
  const int bits = opt.bits;
  const ArmKernel kernel = opt.kernel;
  alignas(64) i32 tile[kMr * kNr];
  for (i64 p = p0; p < p1; ++p) {
    for (i64 q = 0; q < pb.panels(); ++q) {
      switch (kernel) {
        case ArmKernel::kOursGemm:
          if (opt.flush_override > 0)
            micro_smlal_16x4(ctx, pa.panel(p), pb.panel(q), k,
                             opt.flush_override, tile);
          else if (bits <= 3)
            micro_mla_16x4(ctx, pa.panel(p), pb.panel(q), k,
                           mla_flush_interval(bits), tile);
          else
            micro_smlal_16x4(ctx, pa.panel(p), pb.panel(q), k,
                             smlal_flush_interval(bits), tile);
          break;
        case ArmKernel::kNcnn:
          micro_ncnn_16x4(ctx, pa.panel(p), pb.panel(q), k, tile);
          break;
        case ArmKernel::kTraditional:
        case ArmKernel::kSdotExt:
          LBC_CHECK_MSG(false, "kernel has its own entry point");
          break;
      }
      const i64 rows = std::min<i64>(kMr, m - p * kMr);
      const i64 cols = std::min<i64>(kNr, n - q * kNr);
      for (i64 ii = 0; ii < rows; ++ii) {
        // Cache traffic of the real kernel's C store (the scratch tile is
        // an emulation artifact; its issue cost is the micro kernel's ST1).
        ctx.mem(&c[(p * kMr + ii) * n + q * kNr], static_cast<u64>(cols) * 4);
        for (i64 jj = 0; jj < cols; ++jj)
          c[(p * kMr + ii) * n + q * kNr + jj] = tile[jj * kMr + ii];
      }
    }
  }
}

}  // namespace

GemmStats gemm_s8s32(const i8* a, const i8* b, i32* c, i64 m, i64 n, i64 k,
                     const GemmOptions& opt) {
  LBC_CHECK_MSG(opt.bits >= 2 && opt.bits <= 8, "gemm_lowbit: bits outside [2, 8]");
  GemmStats stats;

  if (opt.kernel == ArmKernel::kTraditional) {
    Ctx ctx;
    gemm_traditional(ctx, opt.bits, a, b, c, m, n, k);
    stats.counts = ctx.counts;
    stats.thread_counts = {ctx.counts};
    stats.interleaved = false;  // the naive loop does not software-pipeline
    return stats;
  }

  if (opt.kernel == ArmKernel::kSdotExt) {
    Ctx pack_ctx;
    Ctx ctx;
    const PackedSdot ps = pack_sdot(&pack_ctx, a, b, m, n, k);
    stats.pack_extra_elems = static_cast<i64>(ps.a.size() + ps.b.size()) -
                             m * k - k * n;
    alignas(64) i32 tile[kMr * kNr];
    for (i64 p = 0; p < ps.a_panels(); ++p)
      for (i64 q = 0; q < ps.b_panels(); ++q) {
        micro_sdot_16x4(ctx, ps.a_panel(p), ps.b_panel(q), ps.k_pad, tile);
        const i64 rows = std::min<i64>(kMr, m - p * kMr);
        const i64 cols = std::min<i64>(kNr, n - q * kNr);
        for (i64 ii = 0; ii < rows; ++ii) {
          ctx.mem(&c[(p * kMr + ii) * n + q * kNr], static_cast<u64>(cols) * 4);
          for (i64 jj = 0; jj < cols; ++jj)
            c[(p * kMr + ii) * n + q * kNr + jj] = tile[jj * kMr + ii];
        }
      }
    stats.thread_counts = {ctx.counts};
    stats.serial_counts = pack_ctx.counts;
    stats.counts = ctx.counts;
    stats.counts.merge(pack_ctx.counts);
    return stats;
  }

  Ctx pack_ctx;
  const PackedA pa = pack_a(opt.count_a_pack ? &pack_ctx : nullptr, a, m, k);
  const PackedB pb = pack_b(&pack_ctx, b, k, n);
  stats.pack_extra_elems = pa.extra_elems() + pb.extra_elems();

  const int threads =
      std::max(1, std::min<int>(opt.threads, static_cast<int>(pa.panels())));
  if (threads == 1) {
    Ctx ctx;
    run_panels(ctx, pa, pb, c, m, n, k, opt, 0, pa.panels());
    stats.counts = ctx.counts;
    stats.thread_counts = {ctx.counts};
  } else {
    // Row-panel parallelism: each modeled worker owns a disjoint band of C
    // and its own Ctx (the per-band counts feed the multicore Amdahl timing
    // model unchanged). Bands execute on the shared persistent pool — no
    // per-call thread spawn; grain 1 = one band per pool chunk.
    std::vector<Ctx> ctxs(static_cast<size_t>(threads));
    const i64 per = ceil_div(pa.panels(), threads);
    serve::ThreadPool::global().parallel_for(
        0, threads, 1, [&](i64 t0, i64 t1) {
          for (i64 t = t0; t < t1; ++t) {
            const i64 p0 = t * per;
            const i64 p1 = std::min<i64>(pa.panels(), p0 + per);
            if (p0 < p1)
              run_panels(ctxs[static_cast<size_t>(t)], pa, pb, c, m, n, k,
                         opt, p0, p1);
          }
        });
    for (const auto& cx : ctxs) {
      stats.counts.merge(cx.counts);
      stats.thread_counts.push_back(cx.counts);
    }
  }
  stats.serial_counts = pack_ctx.counts;
  stats.counts.merge(pack_ctx.counts);
  return stats;
}

}  // namespace lbc::armkern
