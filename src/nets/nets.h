// Representative, non-repetitive convolution layer tables for the three
// networks the paper evaluates (Sec. 5.1): ResNet-50 (19 layers), the
// CRNAS-searched SCR-ResNet-50 (13 layers, unusual channel counts), and
// DenseNet-121 (16 layers).
//
// The paper does not publish the shape list; the ResNet-50 table below is
// the full set of distinct bottleneck convolution shapes of the Caffe Model
// Zoo ResNet-50 (excluding the 3-channel stem, which is not quantized), in
// network order. Its correctness is corroborated by Fig. 13: the paper's
// reported space-overhead extremes — 8.6034x at conv2 and 1.0218x at
// conv18 — are exactly reproduced by these shapes (see bench/fig13).
// SCR-ResNet-50 uses CRNAS-style reallocated channels (not published;
// approximated per Sec. 5.5's description of "unusual" shapes), and
// DenseNet-121 uses the growth-rate-32 block/transition shapes including
// the 14x14x736 1x1 layer the paper cites.
#pragma once

#include <span>
#include <vector>

#include "common/conv_shape.h"

namespace lbc::nets {

std::span<const ConvShape> resnet50_layers();
std::span<const ConvShape> scr_resnet50_layers();
std::span<const ConvShape> densenet121_layers();

/// The ResNet-50 layers where winograd F(2x2,3x3) applies (Fig. 8).
std::vector<ConvShape> resnet50_winograd_layers();

/// A geometry-reduced copy of a layer table (H/W shrunk, channels capped)
/// used by tests that need realistic-but-fast shapes.
std::vector<ConvShape> shrink_for_tests(std::span<const ConvShape> layers,
                                        i64 max_hw, i64 max_c);

}  // namespace lbc::nets
