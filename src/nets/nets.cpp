#include "nets/nets.h"

#include <algorithm>

namespace lbc::nets {
namespace {

ConvShape make(const char* name, i64 in_h, i64 in_c, i64 out_c, i64 k, i64 st,
               i64 pad) {
  ConvShape s;
  s.name = name;
  s.batch = 1;
  s.in_h = s.in_w = in_h;
  s.in_c = in_c;
  s.out_c = out_c;
  s.kernel = k;
  s.stride = st;
  s.pad = pad;
  return s;
}

// Distinct bottleneck conv shapes of ResNet-50 in network order; see the
// header for why this list is pinned down by the paper's Fig. 13 numbers.
const std::vector<ConvShape> kResNet50 = {
    make("conv1", 56, 64, 64, 1, 1, 0),      // smallest 1x1/64ch (Sec. 5.2)
    make("conv2", 56, 64, 64, 3, 1, 1),      // Fig. 13 max im2col 8.6034x
    make("conv3", 56, 256, 64, 1, 1, 0),
    make("conv4", 56, 64, 256, 1, 1, 0),
    make("conv5", 56, 256, 128, 1, 2, 0),
    make("conv6", 28, 128, 128, 3, 1, 1),
    make("conv7", 28, 128, 512, 1, 1, 0),
    make("conv8", 56, 256, 512, 1, 2, 0),    // stage-2 projection
    make("conv9", 28, 512, 128, 1, 1, 0),
    make("conv10", 28, 512, 256, 1, 2, 0),
    make("conv11", 14, 256, 256, 3, 1, 1),
    make("conv12", 14, 256, 1024, 1, 1, 0),
    make("conv13", 28, 512, 1024, 1, 2, 0),  // stage-3 projection
    make("conv14", 14, 1024, 256, 1, 1, 0),  // deepest-K 1x1: paper's top speedup
    make("conv15", 14, 1024, 512, 1, 2, 0),
    make("conv16", 7, 512, 512, 3, 1, 1),
    make("conv17", 7, 512, 2048, 1, 1, 0),
    make("conv18", 14, 1024, 2048, 1, 2, 0),  // Fig. 13 min im2col 1.0218x
    make("conv19", 7, 2048, 512, 1, 1, 0),
};

// CRNAS reallocates computation across stages, producing channel counts off
// the usual power-of-two grid (Sec. 5.5: shapes "not commonly used").
const std::vector<ConvShape> kScrResNet50 = {
    make("conv1", 56, 88, 88, 1, 1, 0),
    make("conv2", 56, 88, 88, 3, 1, 1),
    make("conv3", 56, 88, 344, 1, 1, 0),
    make("conv4", 56, 344, 176, 1, 2, 0),
    make("conv5", 28, 176, 176, 3, 1, 1),
    make("conv6", 28, 176, 688, 1, 1, 0),
    make("conv7", 28, 688, 344, 1, 2, 0),
    make("conv8", 14, 344, 344, 3, 1, 1),
    make("conv9", 14, 344, 1376, 1, 1, 0),
    make("conv10", 14, 1376, 720, 1, 2, 0),
    make("conv11", 7, 720, 720, 3, 1, 1),
    make("conv12", 7, 720, 2880, 1, 1, 0),
    make("conv13", 7, 2880, 720, 1, 1, 0),
};

// DenseNet-121 (growth rate 32): bottleneck 1x1 -> 128 and 3x3 128 -> 32
// inside each block, 1x1 transitions between blocks. Representative
// input-channel counts sampled along each block, including the paper-cited
// 14x14x736 layer (conv11 below).
const std::vector<ConvShape> kDenseNet121 = {
    make("conv1", 56, 64, 128, 1, 1, 0),
    make("conv2", 56, 128, 32, 3, 1, 1),
    make("conv3", 56, 192, 128, 1, 1, 0),
    make("conv4", 56, 256, 128, 1, 1, 0),   // transition 1
    make("conv5", 28, 128, 128, 1, 1, 0),
    make("conv6", 28, 128, 32, 3, 1, 1),
    make("conv7", 28, 384, 128, 1, 1, 0),
    make("conv8", 28, 512, 256, 1, 1, 0),   // transition 2
    make("conv9", 14, 256, 128, 1, 1, 0),
    make("conv10", 14, 128, 32, 3, 1, 1),
    make("conv11", 14, 736, 128, 1, 1, 0),  // the Sec. 5.5 example shape
    make("conv12", 14, 1024, 128, 1, 1, 0),
    make("conv13", 14, 1024, 512, 1, 1, 0),  // transition 3
    make("conv14", 7, 512, 128, 1, 1, 0),
    make("conv15", 7, 128, 32, 3, 1, 1),
    make("conv16", 7, 1024, 128, 1, 1, 0),
};

}  // namespace

std::span<const ConvShape> resnet50_layers() { return kResNet50; }
std::span<const ConvShape> scr_resnet50_layers() { return kScrResNet50; }
std::span<const ConvShape> densenet121_layers() { return kDenseNet121; }

std::vector<ConvShape> resnet50_winograd_layers() {
  std::vector<ConvShape> out;
  for (const auto& s : kResNet50)
    if (s.winograd_eligible()) out.push_back(s);
  return out;
}

std::vector<ConvShape> shrink_for_tests(std::span<const ConvShape> layers,
                                        i64 max_hw, i64 max_c) {
  std::vector<ConvShape> out;
  for (const auto& s : layers) {
    ConvShape t = s;
    t.in_h = std::min(t.in_h, max_hw);
    t.in_w = std::min(t.in_w, max_hw);
    t.in_c = std::min(t.in_c, max_c);
    t.out_c = std::min(t.out_c, max_c);
    // Keep geometry valid for 3x3 layers on tiny inputs.
    if (t.in_h + 2 * t.pad < t.kernel) t.pad = t.kernel - t.in_h;
    out.push_back(t);
  }
  return out;
}

}  // namespace lbc::nets
