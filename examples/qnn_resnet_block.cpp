// End-to-end quantized network example: build a three-block ResNet-style
// stack with the QnnGraph runner, calibrate it post-training, and sweep
// the bit width — showing the accuracy/latency tradeoff the paper's
// kernels make tunable, on the simulated Cortex-A53.
//
//   $ ./examples/qnn_resnet_block
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "core/qnn_graph.h"
#include "core/report.h"

using namespace lbc;

namespace {

core::QnnGraph build_stack(int bits) {
  core::QnnGraph g;
  auto cur = g.add_input(16, 32);
  cur = core::add_bottleneck_block(g, cur, 16, 16, 32, 1, bits, 100);
  cur = core::add_bottleneck_block(g, cur, 32, 16, 32, 1, bits, 200);
  cur = core::add_bottleneck_block(g, cur, 32, 32, 64, 2, bits, 300);
  g.add_global_avgpool(cur);
  return g;
}

}  // namespace

int main() {
  core::print_environment_banner();
  const Tensor<float> x =
      random_ftensor(Shape4{1, 16, 32, 32}, -1.0f, 1.0f, 9);

  std::printf("\nquantized 3-block ResNet stack, 16x32x32 input, ARM backend\n");
  std::printf("%-6s %12s %14s %16s\n", "bits", "latency(ms)", "max rel err",
              "vs 8-bit speed");

  double t8 = 0;
  for (int bits : {8, 6, 5, 4, 3, 2}) {
    core::QnnGraph g = build_stack(bits);
    g.calibrate(x);
    const core::QnnGraph::RunResult r = g.forward(x);
    const Tensor<float> ref = g.forward_fp32(x);
    double err = 0, mag = 1e-9;
    for (i64 i = 0; i < r.out.elems(); ++i) {
      err = std::max(err, static_cast<double>(
                              std::fabs(r.out.data()[i] - ref.data()[i])));
      mag = std::max(mag, static_cast<double>(std::fabs(ref.data()[i])));
    }
    if (bits == 8) t8 = r.seconds;
    std::printf("%-6d %12.3f %13.1f%% %15.2fx\n", bits, r.seconds * 1e3,
                100.0 * err / mag, t8 / r.seconds);
  }
  std::printf(
      "\nInteger-only inference end to end: activations stay int8-packed "
      "between nodes, re-quantization is fused into each producer, and the "
      "residual adds rescale with fixed-point multipliers — the deployment "
      "regime the paper's kernels target.\n");
  return 0;
}
