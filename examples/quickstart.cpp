// Quickstart: run one quantized convolution layer fp32 -> fp32 through the
// public QuantizedConv2d API on both simulated backends, at several bit
// widths, and print the modeled execution time and quantization error.
//
//   $ ./examples/quickstart
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "core/engine.h"
#include "core/report.h"
#include "refconv/conv_ref.h"

using namespace lbc;

int main() {
  core::print_environment_banner();

  // A ResNet-style layer: 3x3, 64 -> 64 channels on a 28x28 feature map.
  ConvShape shape;
  shape.name = "demo";
  shape.batch = 1;
  shape.in_c = 64;
  shape.in_h = shape.in_w = 28;
  shape.out_c = 64;
  shape.kernel = 3;
  shape.stride = 1;
  shape.pad = 1;

  const Tensor<float> x =
      random_ftensor(Shape4{1, 64, 28, 28}, -1.0f, 1.0f, 7);
  const Tensor<float> w =
      random_ftensor(Shape4{64, 64, 3, 3}, -0.3f, 0.3f, 8);
  const Tensor<float> ref = ref::conv2d_f32(shape, x, w);

  std::printf("\nLayer: %s\n", describe(shape).c_str());
  std::printf("%-6s %-18s %14s %14s\n", "bits", "backend", "time (ms/us)",
              "max rel err");
  for (int bits : {8, 6, 4, 2}) {
    core::QuantizedConv2d layer(shape, bits, core::Backend::kArmCortexA53);
    layer.set_weights(w);
    const Tensor<float> out = layer.forward(x).value();
    double err = 0, mag = 1e-9;
    for (i64 i = 0; i < out.elems(); ++i) {
      err = std::max(err, static_cast<double>(
                              std::fabs(out.data()[i] - ref.data()[i])));
      mag = std::max(mag, static_cast<double>(std::fabs(ref.data()[i])));
    }
    std::printf("%-6d %-18s %11.3f ms %13.1f%%\n", bits, "ARM Cortex-A53",
                layer.last_seconds() * 1e3, 100.0 * err / mag);
  }
  for (int bits : {8, 4}) {
    core::QuantizedConv2d layer(shape, bits, core::Backend::kGpuTU102);
    layer.set_weights(w);
    const Tensor<float> out = layer.forward(x).value();
    double err = 0, mag = 1e-9;
    for (i64 i = 0; i < out.elems(); ++i) {
      err = std::max(err, static_cast<double>(
                              std::fabs(out.data()[i] - ref.data()[i])));
      mag = std::max(mag, static_cast<double>(std::fabs(ref.data()[i])));
    }
    std::printf("%-6d %-18s %11.3f us %13.1f%%\n", bits, "GPU TU102",
                layer.last_seconds() * 1e6, 100.0 * err / mag);
  }
  std::printf(
      "\nLower bit widths run faster on both backends; quantization error "
      "grows as bits shrink — the tradeoff the paper's QNNs exploit.\n");
  return 0;
}
