// Mixed-precision deployment planner: given a latency budget for the
// ResNet-50 conv stack on the edge (ARM) backend, choose per-layer bit
// widths that meet the budget while keeping layers at the highest possible
// precision — the practical workflow extremely-low-bit kernels enable
// (paper Sec. 1: "deployment on edge devices ... limited power budget").
//
// Greedy strategy: start everything at 8-bit, repeatedly drop the bit
// width of the layer with the best time-saved-per-bit ratio until the
// budget is met (floor at 2 bits).
//
//   $ ./examples/mixed_bit_planner [budget_ms=45]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "../bench/bench_common.h"

using namespace lbc;

int main(int argc, char** argv) {
  const double budget_s = (argc > 1 ? std::atof(argv[1]) : 45.0) * 1e-3;
  core::print_environment_banner();

  const auto layers = nets::resnet50_layers();
  const int kBits[5] = {8, 6, 5, 4, 2};  // precision ladder

  // Measure every (layer, bits) once on the simulator.
  std::printf("\nprofiling %zu layers x %zu bit widths ...\n", layers.size(),
              std::size(kBits));
  std::map<std::pair<size_t, int>, double> t;
  for (size_t i = 0; i < layers.size(); ++i)
    for (int bits : kBits)
      t[{i, bits}] = bench::arm_layer_seconds(layers[i], bits,
                                              core::ArmImpl::kOurs,
                                              armkern::ConvAlgo::kAuto);

  std::vector<int> level(layers.size(), 0);  // index into kBits
  auto total = [&] {
    double sum = 0;
    for (size_t i = 0; i < layers.size(); ++i)
      sum += t[{i, kBits[static_cast<size_t>(level[i])]}];
    return sum;
  };

  double now = total();
  std::printf("all-8-bit latency: %.2f ms; budget %.2f ms\n", now * 1e3,
              budget_s * 1e3);
  while (now > budget_s) {
    // Pick the drop with the largest time saving per precision level lost.
    double best_save = 0;
    size_t best_i = layers.size();
    for (size_t i = 0; i < layers.size(); ++i) {
      if (level[i] + 1 >= static_cast<int>(std::size(kBits))) continue;
      const double save = t[{i, kBits[static_cast<size_t>(level[i])]}] -
                          t[{i, kBits[static_cast<size_t>(level[i]) + 1]}];
      if (save > best_save) {
        best_save = save;
        best_i = i;
      }
    }
    if (best_i == layers.size()) break;  // everything already at 2-bit
    ++level[best_i];
    now = total();
  }

  std::printf("\n%-9s %-10s %12s\n", "layer", "bits", "time (ms)");
  std::map<int, int> histogram;
  for (size_t i = 0; i < layers.size(); ++i) {
    const int bits = kBits[static_cast<size_t>(level[i])];
    ++histogram[bits];
    std::printf("%-9s %-10d %12.3f\n", layers[i].name.c_str(), bits,
                t[{i, bits}] * 1e3);
  }
  std::printf("plan latency: %.2f ms (budget %.2f ms, %s)\n", now * 1e3,
              budget_s * 1e3, now <= budget_s ? "met" : "NOT met");
  std::printf("bit-width mix:");
  for (const auto& [bits, count] : histogram)
    std::printf("  %d-bit x %d", bits, count);
  std::printf("\n");
  return 0;
}
