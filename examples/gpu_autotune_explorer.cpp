// Interactive exploration of the GPU tiling auto-search (paper Fig. 11):
// for a convolution shape given on the command line, enumerate the search
// space, print the best configurations with their cost-model breakdown,
// and compare against the default tiling and the baselines.
//
//   $ ./examples/gpu_autotune_explorer [in_c=1024] [hw=14] [out_c=256]
//                                      [kernel=1] [batch=1] [bits=8]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/engine.h"
#include "core/report.h"
#include "gpukern/baselines.h"

using namespace lbc;

int main(int argc, char** argv) {
  auto arg = [&](int i, i64 dflt) {
    return argc > i ? static_cast<i64>(std::atoll(argv[i])) : dflt;
  };
  ConvShape s;
  s.name = "user";
  s.in_c = arg(1, 1024);
  s.in_h = s.in_w = arg(2, 14);
  s.out_c = arg(3, 256);
  s.kernel = arg(4, 1);
  s.pad = s.kernel / 2;
  s.batch = arg(5, 1);
  const int bits = static_cast<int>(arg(6, 8));
  if (!s.valid() || (bits != 4 && bits != 8)) {
    std::fprintf(stderr, "invalid shape or bits (4/8)\n");
    return 1;
  }

  core::print_environment_banner();
  const gpusim::DeviceSpec dev = gpusim::DeviceSpec::rtx2080ti();
  std::printf("\nshape: %s  batch=%lld  bits=%d  (GEMM %lld x %lld x %lld)\n",
              describe(s).c_str(), static_cast<long long>(s.batch), bits,
              static_cast<long long>(s.gemm_m()),
              static_cast<long long>(s.gemm_n()),
              static_cast<long long>(s.gemm_k()));

  // Rank the whole space.
  struct Entry {
    gpukern::Tiling t;
    gpusim::KernelCost c;
  };
  std::vector<Entry> entries;
  for (const auto& t : gpukern::tiling_search_space(bits)) {
    gpusim::KernelShape ks = gpukern::make_kernel_shape(s, bits, t);
    const gpusim::KernelCost c = gpusim::estimate_kernel(dev, ks);
    if (c.valid) entries.push_back({t, c});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.c.seconds < b.c.seconds;
            });

  std::printf("\n%zu legal configurations; top 8 by modeled time:\n",
              entries.size());
  std::printf("%-26s %10s %8s %8s %9s %9s %9s\n",
              "tiling (M,N,K,Ks,warps)", "time(us)", "blocks", "occup",
              "comp(us)", "gmem(us)", "smem(us)");
  for (size_t i = 0; i < std::min<size_t>(8, entries.size()); ++i) {
    const auto& e = entries[i];
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%d x %d x %d x %d, %dx%d", e.t.mtile,
                  e.t.ntile, e.t.ktile, e.t.kstep, e.t.warp_rows,
                  e.t.warp_cols);
    std::printf("%-26s %10.2f %8lld %7.0f%% %9.2f %9.2f %9.2f\n", buf,
                e.c.seconds * 1e6, static_cast<long long>(e.c.blocks),
                e.c.occupancy * 100, e.c.compute_s * 1e6, e.c.gmem_s * 1e6,
                e.c.smem_s * 1e6);
  }

  const double deflt =
      core::time_gpu_conv(dev, s, bits, core::GpuImpl::kOursDefaultTiling).value()
          .seconds;
  const double cudnn =
      core::time_gpu_conv(dev, s, 8, core::GpuImpl::kCudnnDp4a).value().seconds;
  const double trt =
      core::time_gpu_conv(dev, s, 8, core::GpuImpl::kTensorRT).value().seconds;
  std::printf("\ndefault tiling: %.2f us (auto-search gain %.2fx)\n",
              deflt * 1e6, deflt / entries.front().c.seconds);
  std::printf("cuDNN dp4a 8-bit: %.2f us | TensorRT 8-bit: %.2f us\n",
              cudnn * 1e6, trt * 1e6);
  return 0;
}
