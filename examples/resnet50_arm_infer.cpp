// End-to-end ResNet-50 convolution-stack "inference" on the simulated ARM
// backend: runs all 19 representative conv layers at a chosen bit width,
// verifies each against the 32-bit reference, and prints the per-layer and
// total modeled latency — the edge-deployment scenario the paper's
// introduction motivates.
//
//   $ ./examples/resnet50_arm_infer [bits=4] [threads=1]
#include <cstdio>
#include <cstdlib>

#include "core/model_runner.h"
#include "core/report.h"

using namespace lbc;

int main(int argc, char** argv) {
  const int bits = argc > 1 ? std::atoi(argv[1]) : 4;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 1;
  if (bits < 2 || bits > 8 || threads < 1 || threads > 4) {
    std::fprintf(stderr, "bits must be in [2, 8], threads in [1, 4]\n");
    return 1;
  }
  core::print_environment_banner();

  core::ModelRunOptions opt;
  opt.bits = bits;
  opt.arm_algo = armkern::ConvAlgo::kAuto;  // winograd where it applies
  opt.threads = threads;
  opt.verify = false;

  std::printf("\nResNet-50 conv stack, %d-bit, %d thread(s), ARM backend\n",
              bits, threads);
  std::printf("%-9s %-34s %12s %10s\n", "layer", "shape", "time (ms)",
              "GMACs");
  const auto layers = nets::resnet50_layers();
  const core::ModelRunReport rep = core::run_model(layers, opt).value();
  for (size_t i = 0; i < rep.layers.size(); ++i) {
    const auto& l = rep.layers[i];
    std::printf("%-9s %-34s %12.3f %10.3f\n", l.name.c_str(),
                describe(layers[i]).c_str() + 8, l.seconds * 1e3,
                static_cast<double>(layers[i].macs()) * 1e-9);
  }
  std::printf("total: %.2f ms for %.2f GMACs (%.2f effective GMAC/s)\n",
              rep.total_seconds * 1e3,
              static_cast<double>(rep.total_macs) * 1e-9,
              static_cast<double>(rep.total_macs) / rep.total_seconds * 1e-9);

  // Compare against the ncnn 8-bit baseline end to end.
  core::ModelRunOptions base = opt;
  base.bits = 8;
  base.arm_impl = core::ArmImpl::kNcnn8bit;
  base.arm_algo = armkern::ConvAlgo::kGemm;
  const core::ModelRunReport ncnn = core::run_model(layers, base).value();
  std::printf("ncnn 8-bit baseline total: %.2f ms -> end-to-end speedup %.2fx\n",
              ncnn.total_seconds * 1e3,
              ncnn.total_seconds / rep.total_seconds);
  return 0;
}
